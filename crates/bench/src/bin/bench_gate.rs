//! Performance regression gate over `Harness` suite JSON.
//!
//! Compares a freshly recorded bench suite against a committed
//! baseline, matching benchmarks by name and failing (exit code 1)
//! when any median slows down by more than the tolerance.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [--tolerance PCT]
//! ```
//!
//! The default tolerance is **15%**: generous enough to absorb normal
//! scheduler and cache noise on a busy CI box (medians over a handful
//! of short samples routinely wobble several percent, and the CI run
//! uses fast settings — few samples, short sample windows — that widen
//! the spread further), yet tight enough that a real regression, like
//! an allocation sneaking back into the training hot loop, lands well
//! outside it. Speedups and new benchmarks pass; a benchmark that
//! *disappears* from the candidate fails the gate, so coverage cannot
//! silently shrink.

use ema_obs::Json;
use std::process::ExitCode;

/// Slowdown tolerance as a fraction (0.15 = +15% median is still OK).
const DEFAULT_TOLERANCE: f64 = 0.15;

fn medians(suite: &Json, path: &str) -> Vec<(String, f64)> {
    let benches = suite
        .get("benchmarks")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: no 'benchmarks' array"));
    benches
        .iter()
        .map(|b| {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{path}: benchmark without a name"))
                .to_string();
            let median = b
                .get("median_ns")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{path}: '{name}' has no median_ns"));
            (name, median)
        })
        .collect()
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().expect("usage: bench_gate <baseline.json> <candidate.json> [--tolerance PCT]");
    let candidate_path = args.next().expect("usage: bench_gate <baseline.json> <candidate.json> [--tolerance PCT]");
    let mut tolerance = DEFAULT_TOLERANCE;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--tolerance" => {
                let pct: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a percentage, e.g. --tolerance 15");
                tolerance = pct / 100.0;
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let baseline = medians(&load(&baseline_path), &baseline_path);
    let candidate = medians(&load(&candidate_path), &candidate_path);

    let mut failures = 0u32;
    for (name, base_ns) in &baseline {
        let Some((_, cand_ns)) = candidate.iter().find(|(n, _)| n == name) else {
            eprintln!("GATE FAIL {name}: present in baseline, missing from candidate");
            failures += 1;
            continue;
        };
        let ratio = cand_ns / base_ns;
        let delta_pct = (ratio - 1.0) * 100.0;
        let verdict = if ratio > 1.0 + tolerance {
            failures += 1;
            "GATE FAIL"
        } else {
            "gate ok  "
        };
        println!(
            "{verdict} {name}: {:.3} ms -> {:.3} ms ({delta_pct:+.1}%)",
            base_ns / 1e6,
            cand_ns / 1e6,
        );
    }
    for (name, _) in &candidate {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("gate ok   {name}: new benchmark (no baseline)");
        }
    }

    if failures > 0 {
        eprintln!(
            "bench gate: {failures} benchmark(s) regressed beyond {:.0}% median slowdown",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench gate: all medians within {:.0}% of baseline", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}
