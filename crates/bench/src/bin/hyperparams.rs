//! Hyper-parameter sweep (paper Sec. V-D): learning rate × hidden
//! width for MTGNN.

use ema_bench::{describe_scale, save_json, scale_from_args};
use ema_core::experiments::run_hyperparameter_sweep;

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("hyperparams", &scale);
    println!("Hyper-parameter sweep ({}, threads={threads})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let table = run_hyperparameter_sweep(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());
    println!("paper outcome: lr = 0.01 with 32 hidden units was optimal.");

    if let Some(path) = save_json("hyperparams", &table.to_json()) {
        println!("run recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
