//! Per-variable error analysis (paper future work): which EMA variables
//! are hardest to forecast.

use ema_bench::{describe_scale, save_json, scale_from_args};
use ema_core::experiments::run_per_variable;

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("per_variable", &scale);
    println!("Per-variable MSE ({}, threads={threads})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let table = run_per_variable(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());

    // Highlight the extremes.
    let mut rows: Vec<(&str, f64)> = table
        .rows
        .iter()
        .map(|(label, cells)| (label.as_str(), cells[0].mean))
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    if let (Some(best), Some(worst)) = (rows.first(), rows.last()) {
        println!("easiest variable: {} ({:.3})", best.0, best.1);
        println!("hardest variable: {} ({:.3})", worst.0, worst.1);
    }

    if let Some(path) = save_json("per_variable", &table.to_json()) {
        println!("run recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
