//! Regenerates Fig. 3 (Experiment C): MSE distributions with static vs
//! MTGNN-learned graphs, as boxplot statistics plus the per-individual
//! relative %-change annotations.

use ema_bench::{describe_scale, save_json, scale_from_args};
use ema_core::experiments::run_experiment_c;

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("fig3", &scale);
    println!("Experiment C ({}, threads={threads})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let fig = run_experiment_c(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", fig.render());
    println!("elapsed: {:.1?}\n", started.elapsed());

    println!("paper reference points:");
    println!("  MTGNN best overall at ≈0.84 with learned graphs;");
    println!("  ASTGCN learned-vs-static: biggest improvement −20.3% (kNN_learned);");
    println!("  learned/static graph correlation ≈88%;");
    println!("  A3TGCN stays ≈1.02 in every condition.");

    if let Some(path) = save_json("fig3", &fig.to_json()) {
        println!("\nrun recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
