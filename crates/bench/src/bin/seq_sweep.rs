//! Input-length sweep (paper future work): how the window length
//! affects LSTM, MTGNN and ASTGCN.

use ema_bench::{describe_scale, save_json, scale_from_args};
use ema_core::experiments::run_seq_sweep;

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("seq_sweep", &scale);
    println!("Input-length sweep ({}, threads={threads})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let table = run_seq_sweep(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());
    println!("paper context: Table II tests Seq1/2/5 and finds multi-step input");
    println!("slightly better; this sweep extends the axis to 10 steps.");

    if let Some(path) = save_json("seq_sweep", &table.to_json()) {
        println!("run recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
