//! Input-length sweep (paper future work): how the window length
//! affects LSTM, MTGNN and ASTGCN.

use ema_bench::{describe_scale, save_json, scale_from_args};
use ema_core::experiments::run_seq_sweep;

fn main() {
    let scale = scale_from_args();
    println!("Input-length sweep ({})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    let table = run_seq_sweep(&scale);
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());
    println!("paper context: Table II tests Seq1/2/5 and finds multi-step input");
    println!("slightly better; this sweep extends the axis to 10 steps.");

    if let Some(path) = save_json("seq_sweep", &table.to_json()) {
        println!("run recorded at {}", path.display());
    }
}
