//! Regenerates Table II (Experiment A): GNN models vs the LSTM baseline
//! with single- and multi-step input, GDT = 20%.

use ema_bench::{describe_scale, save_json, scale_from_args, PAPER_TABLE2_SEQ5};
use ema_core::experiments::run_experiment_a;

fn main() {
    let scale = scale_from_args();
    let threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::for_scale("table2", &scale);
    println!("Experiment A ({}, threads={threads})\n", describe_scale(&scale));
    let started = std::time::Instant::now();
    ema_obs::recorder().phase("experiment");
    let table = run_experiment_a(&scale);
    ema_obs::recorder().phase("report");
    println!("{}", table.render());
    println!("elapsed: {:.1?}\n", started.elapsed());

    // Side-by-side with the paper's Seq5 column.
    println!("{:<16}{:>12}{:>12}", "row", "paper Seq5", "ours Seq5");
    println!("{}", "-".repeat(40));
    for (name, paper_value) in PAPER_TABLE2_SEQ5 {
        if let Some(cell) = table.cell(name, "Seq5") {
            println!("{name:<16}{paper_value:>12.3}{:>12.3}", cell.mean);
        }
    }
    println!("\nshape expectations: MTGNN < ASTGCN < LSTM ≈ A3TGCN per metric;");
    println!("multi-step (Seq5) ≤ single-step (Seq1) for the GNNs.");

    if let Some(path) = save_json("table2", &table.to_json()) {
        println!("run recorded at {}", path.display());
        ema_obs::recorder().annotate("results_json", path.display().to_string().into());
    }
}
