//! Regenerates Table I: the examined scenario grid (GNN models × graph
//! structures × graph sparsity levels).

use ema_core::experiments::scenario_grid;
use ema_core::Json;

fn main() {
    // Table I is a pure enumeration, but the flag is accepted uniformly
    // across every binary.
    let _threads = ema_bench::threads_from_args();
    let _obs = ema_bench::ObsRun::begin(
        "table1",
        Json::obj(vec![("bin", Json::Str("table1".into()))]),
    );
    ema_obs::recorder().phase("report");
    println!("Table I: all examined scenarios\n");
    println!(
        "{:<12}{:<18}{:<10}",
        "GNN Model", "Graph Structure", "Sparsity"
    );
    println!("{}", "-".repeat(40));
    let grid = scenario_grid();
    for s in &grid {
        println!(
            "{:<12}{:<18}{:<10}",
            s.model.label(),
            s.graph,
            s.gdt.label()
        );
    }
    println!("\n{} scenarios total (3 models × 6 graphs × 3 GDT levels)", grid.len());
    println!("paper Table I lists the same axes: {{A3TGCN, ASTGCN, MTGNN}} ×");
    println!("{{Euclidean, kNN, DTW, Correlation, GNN-learned, Random}} × {{20%, 40%, 100%}}");
}
