//! Property-based tests of graph transformations.

use ema_check::{gen, prop_assert, prop_assert_eq, prop_tests};
use ema_graph::chebyshev::chebyshev_from_adjacency;
use ema_graph::normalize::{
    gcn_norm, laplacian, normalized_laplacian, row_norm_self_loops, spectral_radius,
};
use ema_graph::random::random_with_edge_count;
use ema_graph::sparsify::{sparsify_to_density, top_k_per_row};
use ema_graph::stats::edge_weight_correlation;
use ema_graph::AdjacencyMatrix;
use ema_tensor::{Rng64, Tensor};

fn graph(rng: &mut Rng64) -> AdjacencyMatrix {
    let n = gen::usize_in(rng, 3, 10);
    let mut inner = Rng64::seed_from(gen::u64_below(10_000)(rng));
    AdjacencyMatrix::new(Tensor::rand_uniform(&[n, n], 0.0, 1.0, &mut inner))
}

fn symmetric_graph(rng: &mut Rng64) -> AdjacencyMatrix {
    graph(rng).symmetrized()
}

prop_tests! {
    fn sparsify_edge_counts_never_exceed_target(
        (g, frac) in |rng: &mut Rng64| (graph(rng), gen::f64_in(rng, 0.05, 1.0)),
    ) {
        let n = g.num_nodes();
        let keep = ((n * (n - 1)) as f64 * frac).round().max(1.0) as usize;
        let s = sparsify_to_density(&g, frac);
        prop_assert!(s.num_edges() <= keep.max(g.num_edges().min(keep)));
        prop_assert!(s.num_edges() <= g.num_edges());
    }

    fn sparser_gdt_is_nested_in_denser(g in graph) {
        // Every edge kept at 20% must also be kept at 40%.
        let s20 = sparsify_to_density(&g, 0.2);
        let s40 = sparsify_to_density(&g, 0.4);
        for (i, j, w) in s20.edges() {
            prop_assert!(
                (s40.weight(i, j) - w).abs() < 1e-12,
                "edge ({i},{j}) lost when loosening the threshold"
            );
        }
    }

    fn sparsify_keeps_heaviest_edges(g in graph) {
        let s = sparsify_to_density(&g, 0.25);
        let kept_min = s
            .edges()
            .iter()
            .map(|&(_, _, w)| w)
            .fold(f64::INFINITY, f64::min);
        // No dropped edge may be strictly heavier than the lightest
        // kept edge.
        for (i, j, w) in g.edges() {
            if s.weight(i, j) == 0.0 {
                prop_assert!(w <= kept_min + 1e-12);
            }
        }
    }

    fn top_k_out_degree_bound(
        (g, k) in |rng: &mut Rng64| (graph(rng), gen::usize_in(rng, 1, 5)),
    ) {
        let t = top_k_per_row(&g, k);
        for i in 0..t.num_nodes() {
            let deg = (0..t.num_nodes()).filter(|&j| t.weight(i, j) > 0.0).count();
            prop_assert!(deg <= k);
        }
    }

    fn gcn_norm_is_spectrally_bounded(g in symmetric_graph) {
        let a_hat = gcn_norm(&g);
        prop_assert!(a_hat.all_finite());
        let r = spectral_radius(&a_hat, 200);
        prop_assert!(r <= 1.0 + 1e-6, "radius {r}");
    }

    fn row_norm_self_loops_is_stochastic(g in graph) {
        let r = row_norm_self_loops(&g);
        for i in 0..g.num_nodes() {
            prop_assert!((r.row(i).sum() - 1.0).abs() < 1e-9);
        }
        prop_assert!(r.data().iter().all(|&v| v >= 0.0));
    }

    fn laplacian_rows_sum_to_zero(g in graph) {
        let l = laplacian(&g);
        for i in 0..g.num_nodes() {
            prop_assert!(l.row(i).sum().abs() < 1e-9);
        }
    }

    fn normalized_laplacian_spectrum_in_zero_two(g in symmetric_graph) {
        let l = normalized_laplacian(&g);
        let r = spectral_radius(&l, 200);
        prop_assert!(r <= 2.0 + 1e-6, "λmax {r}");
    }

    fn chebyshev_stack_stays_bounded(
        (g, k) in |rng: &mut Rng64| (symmetric_graph(rng), gen::usize_in(rng, 1, 5)),
    ) {
        let ts = chebyshev_from_adjacency(&g, k);
        prop_assert_eq!(ts.len(), k);
        for t in &ts {
            prop_assert!(t.all_finite());
            let r = spectral_radius(t, 200);
            prop_assert!(r <= 1.0 + 1e-4, "‖T_k‖ {r}");
        }
    }

    fn random_graph_edge_count_is_exact(
        (n, seed) in |rng: &mut Rng64| {
            (gen::usize_in(rng, 3, 10), gen::u64_below(1000)(rng))
        },
    ) {
        let possible = n * (n - 1);
        let mut rng = Rng64::seed_from(seed);
        for edges in [0, 1, possible / 2, possible] {
            let g = random_with_edge_count(n, edges, &mut rng);
            prop_assert_eq!(g.num_edges(), edges);
        }
    }

    fn correlation_is_symmetric_in_arguments(
        (a, b) in |rng: &mut Rng64| {
            let n = gen::usize_in(rng, 3, 10);
            let mut r1 = Rng64::seed_from(gen::u64_below(10_000)(rng));
            let mut r2 = Rng64::seed_from(gen::u64_below(10_000)(rng) ^ 0xdead_beef);
            (
                AdjacencyMatrix::new(Tensor::rand_uniform(&[n, n], 0.0, 1.0, &mut r1)),
                AdjacencyMatrix::new(Tensor::rand_uniform(&[n, n], 0.0, 1.0, &mut r2)),
            )
        },
    ) {
        let ab = edge_weight_correlation(&a, &b);
        let ba = edge_weight_correlation(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab.abs() <= 1.0 + 1e-12);
    }
}
