//! Property-based tests of graph transformations.

use ema_graph::chebyshev::chebyshev_from_adjacency;
use ema_graph::normalize::{
    gcn_norm, laplacian, normalized_laplacian, row_norm_self_loops, spectral_radius,
};
use ema_graph::random::random_with_edge_count;
use ema_graph::sparsify::{sparsify_to_density, top_k_per_row};
use ema_graph::stats::edge_weight_correlation;
use ema_graph::AdjacencyMatrix;
use ema_tensor::{Rng64, Tensor};
use proptest::prelude::*;

fn graph() -> impl Strategy<Value = AdjacencyMatrix> {
    (3usize..10, 0u64..10_000).prop_map(|(n, seed)| {
        let mut rng = Rng64::seed_from(seed);
        AdjacencyMatrix::new(Tensor::rand_uniform(&[n, n], 0.0, 1.0, &mut rng))
    })
}

fn symmetric_graph() -> impl Strategy<Value = AdjacencyMatrix> {
    graph().prop_map(|g| g.symmetrized())
}

proptest! {
    #[test]
    fn sparsify_edge_counts_never_exceed_target(g in graph(), frac in 0.05f64..1.0) {
        let n = g.num_nodes();
        let keep = ((n * (n - 1)) as f64 * frac).round().max(1.0) as usize;
        let s = sparsify_to_density(&g, frac);
        prop_assert!(s.num_edges() <= keep.max(g.num_edges().min(keep)));
        prop_assert!(s.num_edges() <= g.num_edges());
    }

    #[test]
    fn sparser_gdt_is_nested_in_denser(g in graph()) {
        // Every edge kept at 20% must also be kept at 40%.
        let s20 = sparsify_to_density(&g, 0.2);
        let s40 = sparsify_to_density(&g, 0.4);
        for (i, j, w) in s20.edges() {
            prop_assert!(
                (s40.weight(i, j) - w).abs() < 1e-12,
                "edge ({i},{j}) lost when loosening the threshold"
            );
        }
    }

    #[test]
    fn sparsify_keeps_heaviest_edges(g in graph()) {
        let s = sparsify_to_density(&g, 0.25);
        let kept_min = s
            .edges()
            .iter()
            .map(|&(_, _, w)| w)
            .fold(f64::INFINITY, f64::min);
        // No dropped edge may be strictly heavier than the lightest
        // kept edge.
        for (i, j, w) in g.edges() {
            if s.weight(i, j) == 0.0 {
                prop_assert!(w <= kept_min + 1e-12);
            }
        }
    }

    #[test]
    fn top_k_out_degree_bound(g in graph(), k in 1usize..5) {
        let t = top_k_per_row(&g, k);
        for i in 0..t.num_nodes() {
            let deg = (0..t.num_nodes()).filter(|&j| t.weight(i, j) > 0.0).count();
            prop_assert!(deg <= k);
        }
    }

    #[test]
    fn gcn_norm_is_spectrally_bounded(g in symmetric_graph()) {
        let a_hat = gcn_norm(&g);
        prop_assert!(a_hat.all_finite());
        let r = spectral_radius(&a_hat, 200);
        prop_assert!(r <= 1.0 + 1e-6, "radius {r}");
    }

    #[test]
    fn row_norm_self_loops_is_stochastic(g in graph()) {
        let r = row_norm_self_loops(&g);
        for i in 0..g.num_nodes() {
            prop_assert!((r.row(i).sum() - 1.0).abs() < 1e-9);
        }
        prop_assert!(r.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn laplacian_rows_sum_to_zero(g in graph()) {
        let l = laplacian(&g);
        for i in 0..g.num_nodes() {
            prop_assert!(l.row(i).sum().abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_laplacian_spectrum_in_zero_two(g in symmetric_graph()) {
        let l = normalized_laplacian(&g);
        let r = spectral_radius(&l, 200);
        prop_assert!(r <= 2.0 + 1e-6, "λmax {r}");
    }

    #[test]
    fn chebyshev_stack_stays_bounded(g in symmetric_graph(), k in 1usize..5) {
        let ts = chebyshev_from_adjacency(&g, k);
        prop_assert_eq!(ts.len(), k);
        for t in &ts {
            prop_assert!(t.all_finite());
            let r = spectral_radius(t, 200);
            prop_assert!(r <= 1.0 + 1e-4, "‖T_k‖ {r}");
        }
    }

    #[test]
    fn random_graph_edge_count_is_exact(n in 3usize..10, seed in 0u64..1000) {
        let possible = n * (n - 1);
        let mut rng = Rng64::seed_from(seed);
        for edges in [0, 1, possible / 2, possible] {
            let g = random_with_edge_count(n, edges, &mut rng);
            prop_assert_eq!(g.num_edges(), edges);
        }
    }

    #[test]
    fn correlation_is_symmetric_in_arguments(
        (a, b) in (3usize..10, 0u64..10_000, 0u64..10_000).prop_map(|(n, s1, s2)| {
            let mut r1 = Rng64::seed_from(s1);
            let mut r2 = Rng64::seed_from(s2 ^ 0xdead_beef);
            (
                AdjacencyMatrix::new(Tensor::rand_uniform(&[n, n], 0.0, 1.0, &mut r1)),
                AdjacencyMatrix::new(Tensor::rand_uniform(&[n, n], 0.0, 1.0, &mut r2)),
            )
        })
    ) {
        let ab = edge_weight_correlation(&a, &b);
        let ba = edge_weight_correlation(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab.abs() <= 1.0 + 1e-12);
    }
}
