//! Comparison statistics between graphs (Experiment C's graph-similarity
//! analysis).

use crate::AdjacencyMatrix;

/// Pearson correlation between the off-diagonal weights of two graphs
/// over the same node set. The paper reports "88% correlation" between
/// an MTGNN-learned graph and the corresponding static graph with this
/// statistic.
///
/// Returns 0 when either graph has zero weight variance.
///
/// # Panics
/// Panics if node counts differ.
#[must_use]
pub fn edge_weight_correlation(a: &AdjacencyMatrix, b: &AdjacencyMatrix) -> f64 {
    assert_eq!(
        a.num_nodes(),
        b.num_nodes(),
        "graphs must share a node set"
    );
    let n = a.num_nodes();
    let mut xs = Vec::with_capacity(n * (n - 1));
    let mut ys = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                xs.push(a.weight(i, j));
                ys.push(b.weight(i, j));
            }
        }
    }
    pearson(&xs, &ys)
}

/// Jaccard similarity of the edge *sets* (ignoring weights).
///
/// # Panics
/// Panics if node counts differ.
#[must_use]
pub fn edge_set_jaccard(a: &AdjacencyMatrix, b: &AdjacencyMatrix) -> f64 {
    assert_eq!(a.num_nodes(), b.num_nodes(), "graphs must share a node set");
    let n = a.num_nodes();
    let mut inter = 0usize;
    let mut union = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let ea = a.weight(i, j) > 0.0;
            let eb = b.weight(i, j) > 0.0;
            if ea && eb {
                inter += 1;
            }
            if ea || eb {
                union += 1;
            }
        }
    }
    if union == 0 {
        1.0 // two empty graphs are identical
    } else {
        inter as f64 / union as f64
    }
}

/// Summary statistics over a graph's weighted out-degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    /// Minimum weighted out-degree.
    pub min: f64,
    /// Maximum weighted out-degree.
    pub max: f64,
    /// Mean weighted out-degree.
    pub mean: f64,
    /// Population standard deviation of out-degrees.
    pub std: f64,
}

/// Computes the degree summary of a graph.
#[must_use]
pub fn degree_summary(a: &AdjacencyMatrix) -> DegreeSummary {
    let deg = a.out_degrees();
    DegreeSummary {
        min: deg.min(),
        max: deg.max(),
        mean: deg.mean(),
        std: deg.std(),
    }
}

/// Pearson correlation of two equal-length slices; 0 on zero variance.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let n = xs.len() as f64;
    if xs.is_empty() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::{Rng64, Tensor};

    fn random_graph(seed: u64) -> AdjacencyMatrix {
        let mut rng = Rng64::seed_from(seed);
        AdjacencyMatrix::new(Tensor::rand_uniform(&[8, 8], 0.0, 1.0, &mut rng))
    }

    #[test]
    fn self_correlation_is_one() {
        let a = random_graph(1);
        assert!((edge_weight_correlation(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_copy_correlates_perfectly() {
        let a = random_graph(2);
        let b = AdjacencyMatrix::new(a.weights().scale(3.0));
        assert!((edge_weight_correlation(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_graphs_correlate_weakly() {
        let a = random_graph(3);
        let b = random_graph(4);
        let r = edge_weight_correlation(&a, &b).abs();
        assert!(r < 0.4, "independent graphs correlated at {r}");
    }

    #[test]
    fn jaccard_extremes() {
        let a = random_graph(5);
        assert!((edge_set_jaccard(&a, &a) - 1.0).abs() < 1e-12);
        let empty = AdjacencyMatrix::empty(8);
        assert_eq!(edge_set_jaccard(&a, &empty), 0.0);
        assert_eq!(edge_set_jaccard(&empty, &empty), 1.0);
    }

    #[test]
    fn degree_summary_of_star() {
        // Node 0 points to everyone.
        let mut a = AdjacencyMatrix::empty(4);
        for j in 1..4 {
            a.set_weight(0, j, 1.0);
        }
        let s = degree_summary(&a);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 0.0);
        assert!((s.mean - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0); // zero variance
    }
}
