//! Compressed-sparse-row adjacency for larger variable sets.
//!
//! At the paper's scale (V = 26) dense propagation is fastest, but EMA
//! protocols with 50–100 items make `V × V` dense matmuls wasteful when
//! GDT sparsification keeps only 20% of edges. [`SparseMatrix`] stores
//! the propagation matrix in CSR form and provides the two products the
//! GNNs need (`S · x` and `S · H`); `ema-bench` compares it against the
//! dense path.

use crate::AdjacencyMatrix;
use ema_tensor::Tensor;

/// A CSR (compressed sparse row) matrix over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers: `values[row_ptr[i]..row_ptr[i+1]]` is row `i`.
    row_ptr: Vec<usize>,
    /// Column index per stored entry (sorted within each row).
    col_idx: Vec<usize>,
    /// Stored values.
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from a dense tensor, storing entries with
    /// magnitude above `epsilon`.
    ///
    /// # Panics
    /// Panics unless `dense` is rank 2.
    #[must_use]
    pub fn from_dense(dense: &Tensor, epsilon: f64) -> Self {
        assert_eq!(dense.rank(), 2, "sparse conversion needs a matrix");
        let (rows, cols) = (dense.dims()[0], dense.dims()[1]);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = dense.at2(i, j);
                if v.abs() > epsilon {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds from an adjacency matrix (exact zeros dropped).
    #[must_use]
    pub fn from_adjacency(adj: &AdjacencyMatrix) -> Self {
        Self::from_dense(adj.weights(), 0.0)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `nnz / (rows · cols)`.
    #[must_use]
    pub fn fill(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Reconstructs the dense tensor.
    #[must_use]
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                out.set2(i, self.col_idx[k], self.values[k]);
            }
        }
        out
    }

    /// Sparse × vector: `[r, c] · [c] -> [r]`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    #[must_use]
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 1, "matvec rhs must be rank 1");
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let xd = x.data();
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * xd[self.col_idx[k]];
            }
            *slot = acc;
        }
        Tensor::from_vec1(out)
    }

    /// Sparse × dense: `[r, c] · [c, f] -> [r, f]` — the GNN
    /// propagation product `Â · H`.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    #[must_use]
    pub fn matmul_dense(&self, h: &Tensor) -> Tensor {
        assert_eq!(h.rank(), 2, "matmul rhs must be rank 2");
        assert_eq!(h.dims()[0], self.cols, "matmul dimension mismatch");
        let f = h.dims()[1];
        let hd = h.data();
        let mut out = vec![0.0; self.rows * f];
        for i in 0..self.rows {
            let orow = &mut out[i * f..(i + 1) * f];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[k];
                let hrow = &hd[self.col_idx[k] * f..(self.col_idx[k] + 1) * f];
                for (o, &hv) in orow.iter_mut().zip(hrow.iter()) {
                    *o += v * hv;
                }
            }
        }
        Tensor::from_vec(&[self.rows, f], out).expect("spmm output shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::{assert_tensors_close, Rng64};

    fn sparse_dense_pair(seed: u64) -> (SparseMatrix, Tensor) {
        let mut rng = Rng64::seed_from(seed);
        let mut dense = Tensor::zeros(&[12, 12]);
        for _ in 0..30 {
            let i = rng.index(12);
            let j = rng.index(12);
            dense.set2(i, j, rng.normal());
        }
        (SparseMatrix::from_dense(&dense, 0.0), dense)
    }

    #[test]
    fn dense_round_trip() {
        let (sparse, dense) = sparse_dense_pair(1);
        assert_tensors_close(&sparse.to_dense(), &dense, 0.0);
        assert!(sparse.nnz() <= 30);
        assert!(sparse.fill() < 0.25);
    }

    #[test]
    fn matvec_matches_dense() {
        let (sparse, dense) = sparse_dense_pair(2);
        let mut rng = Rng64::seed_from(3);
        let x = Tensor::rand_normal(&[12], 0.0, 1.0, &mut rng);
        assert_tensors_close(&sparse.matvec(&x), &dense.matvec(&x), 1e-12);
    }

    #[test]
    fn matmul_matches_dense() {
        let (sparse, dense) = sparse_dense_pair(4);
        let mut rng = Rng64::seed_from(5);
        let h = Tensor::rand_normal(&[12, 7], 0.0, 1.0, &mut rng);
        assert_tensors_close(&sparse.matmul_dense(&h), &dense.matmul(&h), 1e-12);
    }

    #[test]
    fn adjacency_conversion_counts_edges() {
        let mut a = AdjacencyMatrix::empty(5);
        a.set_weight(0, 1, 0.5);
        a.set_weight(3, 2, 1.5);
        let s = SparseMatrix::from_adjacency(&a);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.rows(), 5);
        assert_eq!(s.cols(), 5);
    }

    #[test]
    fn epsilon_filters_small_entries() {
        let dense = Tensor::from_vec2(vec![vec![1.0, 1e-9], vec![0.0, 2.0]]).unwrap();
        let s = SparseMatrix::from_dense(&dense, 1e-6);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn empty_matrix_products_are_zero() {
        let s = SparseMatrix::from_dense(&Tensor::zeros(&[4, 4]), 0.0);
        assert_eq!(s.nnz(), 0);
        let mut rng = Rng64::seed_from(6);
        let h = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng);
        assert!(s.matmul_dense(&h).data().iter().all(|&v| v == 0.0));
    }
}
