//! Chebyshev polynomial stacks for spectral graph convolutions (ASTGCN).

use crate::normalize::scaled_laplacian;
use crate::AdjacencyMatrix;
use ema_tensor::Tensor;

/// Computes the Chebyshev polynomial stack `T_0(L̃) … T_{K−1}(L̃)` by the
/// recurrence `T_k = 2 L̃ T_{k−1} − T_{k−2}`, with `T_0 = I`, `T_1 = L̃`.
///
/// # Panics
/// Panics if `k == 0` or `l_tilde` is not square.
#[must_use]
pub fn chebyshev_polynomials(l_tilde: &Tensor, k: usize) -> Vec<Tensor> {
    assert!(k > 0, "need at least one Chebyshev term");
    assert_eq!(l_tilde.rank(), 2, "L̃ must be a matrix");
    let n = l_tilde.dims()[0];
    assert_eq!(n, l_tilde.dims()[1], "L̃ must be square");

    let mut out = Vec::with_capacity(k);
    out.push(Tensor::eye(n));
    if k >= 2 {
        out.push(l_tilde.clone());
    }
    for i in 2..k {
        let next = l_tilde
            .matmul(&out[i - 1])
            .scale(2.0)
            .sub(&out[i - 2]);
        out.push(next);
    }
    out
}

/// Builds the Chebyshev stack of order `k` directly from an adjacency
/// matrix via its scaled Laplacian (ASTGCN uses `k = 3`).
#[must_use]
pub fn chebyshev_from_adjacency(adj: &AdjacencyMatrix, k: usize) -> Vec<Tensor> {
    chebyshev_polynomials(&scaled_laplacian(adj), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::spectral_radius;
    use ema_tensor::assert_tensors_close;

    fn sample_l() -> Tensor {
        // A symmetric matrix with spectrum within [-1, 1].
        Tensor::from_vec2(vec![
            vec![0.2, 0.3, 0.0],
            vec![0.3, -0.1, 0.2],
            vec![0.0, 0.2, 0.4],
        ])
        .unwrap()
    }

    #[test]
    fn first_two_terms_are_identity_and_l() {
        let l = sample_l();
        let ts = chebyshev_polynomials(&l, 3);
        assert_eq!(ts.len(), 3);
        assert_tensors_close(&ts[0], &Tensor::eye(3), 0.0);
        assert_tensors_close(&ts[1], &l, 0.0);
    }

    #[test]
    fn recurrence_matches_direct_expansion() {
        // T_2 = 2 L² − I
        let l = sample_l();
        let ts = chebyshev_polynomials(&l, 3);
        let t2 = l.matmul(&l).scale(2.0).sub(&Tensor::eye(3));
        assert_tensors_close(&ts[2], &t2, 1e-12);
    }

    #[test]
    fn single_term_stack() {
        let ts = chebyshev_polynomials(&sample_l(), 1);
        assert_eq!(ts.len(), 1);
        assert_tensors_close(&ts[0], &Tensor::eye(3), 0.0);
    }

    #[test]
    fn stack_from_adjacency_stays_bounded() {
        let mut a = AdjacencyMatrix::empty(4);
        a.set_weight(0, 1, 1.0);
        a.set_weight(1, 0, 1.0);
        a.set_weight(2, 3, 1.0);
        a.set_weight(3, 2, 1.0);
        let ts = chebyshev_from_adjacency(&a, 4);
        assert_eq!(ts.len(), 4);
        // Chebyshev polynomials of a matrix with spectrum in [-1, 1]
        // also have spectrum in [-1, 1].
        for t in &ts {
            assert!(t.all_finite());
            let r = spectral_radius(t, 200);
            assert!(r <= 1.0 + 1e-6, "‖T_k‖ = {r} > 1");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_stack() {
        let _ = chebyshev_polynomials(&sample_l(), 0);
    }
}
