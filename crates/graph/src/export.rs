//! Graph export: Graphviz DOT and edge-list CSV, so individual networks
//! can be inspected with standard tooling (the network-psychometrics
//! community lives on graph plots).

use crate::AdjacencyMatrix;
use std::fmt::Write as _;

/// Renders the graph as Graphviz DOT. Undirected (symmetric) graphs use
/// `graph`/`--` with each edge emitted once; directed graphs use
/// `digraph`/`->`. Edge weights land in both `label` and `penwidth`.
///
/// # Panics
/// Panics if `node_names` is non-empty but does not match the node
/// count.
#[must_use]
pub fn to_dot(adj: &AdjacencyMatrix, node_names: &[String]) -> String {
    let n = adj.num_nodes();
    if !node_names.is_empty() {
        assert_eq!(node_names.len(), n, "name count mismatch");
    }
    let name = |i: usize| -> String {
        node_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("v{i}"))
    };
    let symmetric = adj.is_symmetric();
    let max_w = adj.weights().max().max(1e-12);
    let mut out = String::new();
    let (kind, arrow) = if symmetric {
        ("graph", "--")
    } else {
        ("digraph", "->")
    };
    let _ = writeln!(out, "{kind} ema {{");
    let _ = writeln!(out, "  layout=circo;");
    for i in 0..n {
        let _ = writeln!(out, "  {:?};", name(i));
    }
    for (i, j, w) in adj.edges() {
        if symmetric && j < i {
            continue; // each undirected edge once
        }
        let _ = writeln!(
            out,
            "  {:?} {arrow} {:?} [label=\"{w:.2}\", penwidth={:.2}];",
            name(i),
            name(j),
            0.5 + 2.5 * w / max_w
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the graph as a `source,target,weight` CSV edge list
/// (directed edges; symmetric graphs emit each edge once).
#[must_use]
pub fn to_edge_csv(adj: &AdjacencyMatrix, node_names: &[String]) -> String {
    let n = adj.num_nodes();
    if !node_names.is_empty() {
        assert_eq!(node_names.len(), n, "name count mismatch");
    }
    let name = |i: usize| -> String {
        node_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("v{i}"))
    };
    let symmetric = adj.is_symmetric();
    let mut out = String::from("source,target,weight\n");
    for (i, j, w) in adj.edges() {
        if symmetric && j < i {
            continue;
        }
        let _ = writeln!(out, "{},{},{w}", name(i), name(j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("var{i}")).collect()
    }

    #[test]
    fn symmetric_graph_renders_undirected() {
        let mut a = AdjacencyMatrix::empty(3);
        a.set_weight(0, 1, 0.8);
        a.set_weight(1, 0, 0.8);
        let dot = to_dot(&a, &names(3));
        assert!(dot.starts_with("graph"));
        assert!(dot.contains("\"var0\" -- \"var1\""));
        // Edge emitted exactly once.
        assert_eq!(dot.matches("--").count(), 1);
    }

    #[test]
    fn directed_graph_renders_digraph() {
        let mut a = AdjacencyMatrix::empty(3);
        a.set_weight(0, 1, 0.5);
        let dot = to_dot(&a, &[]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"v0\" -> \"v1\""));
    }

    #[test]
    fn edge_csv_round_trips_weights() {
        let mut a = AdjacencyMatrix::empty(2);
        a.set_weight(0, 1, 0.75);
        let csv = to_edge_csv(&a, &names(2));
        assert!(csv.contains("var0,var1,0.75"));
        assert!(csv.starts_with("source,target,weight"));
    }

    #[test]
    #[should_panic(expected = "name count mismatch")]
    fn rejects_wrong_name_count() {
        let a = AdjacencyMatrix::empty(3);
        let _ = to_dot(&a, &names(2));
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let dot = to_dot(&AdjacencyMatrix::empty(2), &[]);
        assert!(dot.contains("graph ema {"));
        assert!(dot.ends_with("}\n"));
    }
}
