//! Random graph generation — the paper's RAND control condition.

use crate::AdjacencyMatrix;
use ema_tensor::Rng64;

/// An Erdős–Rényi graph: each directed edge exists independently with
/// probability `p`, with weight 1.
///
/// # Panics
/// Panics unless `0 <= p <= 1`.
#[must_use]
pub fn erdos_renyi(n: usize, p: f64, rng: &mut Rng64) -> AdjacencyMatrix {
    assert!((0.0..=1.0).contains(&p), "invalid edge probability {p}");
    let mut a = AdjacencyMatrix::empty(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.bernoulli(p) {
                a.set_weight(i, j, 1.0);
            }
        }
    }
    a
}

/// A random graph with *exactly* `edges` directed edges and uniform
/// random weights in `(0, 1]` — the paper's random control "with the
/// same amount of connected edges" as the similarity graphs.
///
/// # Panics
/// Panics if `edges` exceeds `n · (n − 1)`.
#[must_use]
pub fn random_with_edge_count(n: usize, edges: usize, rng: &mut Rng64) -> AdjacencyMatrix {
    let possible = n * (n - 1);
    assert!(
        edges <= possible,
        "cannot place {edges} edges in a graph with {possible} slots"
    );
    // Enumerate all off-diagonal slots and pick a random subset via a
    // partial Fisher–Yates permutation.
    let mut slots: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    let mut a = AdjacencyMatrix::empty(n);
    let total = slots.len();
    for e in 0..edges {
        let pick = e + rng.index(total - e);
        slots.swap(e, pick);
        let (i, j) = slots[e];
        // Uniform in (0, 1]: avoid zero weights which would not count
        // as edges.
        a.set_weight(i, j, 1.0 - rng.uniform() * (1.0 - f64::EPSILON));
    }
    a
}

/// A random graph matching the density (edge count) of a reference
/// graph, as used in Experiment B's RAND rows.
#[must_use]
pub fn random_like(reference: &AdjacencyMatrix, rng: &mut Rng64) -> AdjacencyMatrix {
    random_with_edge_count(reference.num_nodes(), reference.num_edges(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = Rng64::seed_from(1);
        let a = erdos_renyi(40, 0.3, &mut rng);
        let d = a.density();
        assert!((d - 0.3).abs() < 0.05, "density {d} far from 0.3");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = Rng64::seed_from(2);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 90);
    }

    #[test]
    fn exact_edge_count() {
        let mut rng = Rng64::seed_from(3);
        for edges in [0, 1, 10, 50, 90] {
            let a = random_with_edge_count(10, edges, &mut rng);
            assert_eq!(a.num_edges(), edges);
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn rejects_too_many_edges() {
        let mut rng = Rng64::seed_from(4);
        let _ = random_with_edge_count(3, 7, &mut rng);
    }

    #[test]
    fn random_like_matches_reference_density() {
        let mut rng = Rng64::seed_from(5);
        let reference = erdos_renyi(12, 0.4, &mut rng);
        let r = random_like(&reference, &mut rng);
        assert_eq!(r.num_edges(), reference.num_edges());
        assert_eq!(r.num_nodes(), 12);
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = erdos_renyi(8, 0.5, &mut Rng64::seed_from(7));
        let b = erdos_renyi(8, 0.5, &mut Rng64::seed_from(7));
        assert_eq!(a.weights().data(), b.weights().data());
    }
}
