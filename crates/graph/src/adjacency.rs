//! The weighted adjacency matrix type.

use ema_tensor::Tensor;

/// A weighted adjacency matrix over `V` nodes (EMA variables).
///
/// Weights are non-negative; the diagonal is conventionally zero (self
/// loops are added explicitly during normalisation, not stored).
/// Symmetry is *not* enforced — similarity graphs are symmetric but
/// MTGNN-learned graphs are directed.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjacencyMatrix {
    weights: Tensor,
}

impl AdjacencyMatrix {
    /// Wraps a `[V, V]` weight tensor, zeroing the diagonal and clamping
    /// negative weights to zero.
    ///
    /// # Panics
    /// Panics unless `weights` is a square rank-2 tensor.
    #[must_use]
    pub fn new(mut weights: Tensor) -> Self {
        assert_eq!(weights.rank(), 2, "adjacency must be rank 2");
        let (m, n) = (weights.dims()[0], weights.dims()[1]);
        assert_eq!(m, n, "adjacency must be square, got [{m}, {n}]");
        for i in 0..n {
            weights.set2(i, i, 0.0);
        }
        weights.map_inplace(|v| v.max(0.0));
        Self { weights }
    }

    /// A graph with no edges.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self {
            weights: Tensor::zeros(&[n, n]),
        }
    }

    /// The complete graph with unit weights (no self loops).
    #[must_use]
    pub fn complete(n: usize) -> Self {
        Self::new(Tensor::ones(&[n, n]))
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.weights.dims()[0]
    }

    /// The raw weight tensor.
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Consumes the graph, returning the weight tensor.
    #[must_use]
    pub fn into_weights(self) -> Tensor {
        self.weights
    }

    /// Edge weight from `i` to `j`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[must_use]
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights.at2(i, j)
    }

    /// Sets the edge weight from `i` to `j` (diagonal writes ignored,
    /// negative weights clamped to zero).
    pub fn set_weight(&mut self, i: usize, j: usize, w: f64) {
        if i == j {
            return;
        }
        self.weights.set2(i, j, w.max(0.0));
    }

    /// Number of directed edges with strictly positive weight.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.weights.data().iter().filter(|&&w| w > 0.0).count()
    }

    /// Fraction of possible directed edges present, in `[0, 1]`.
    #[must_use]
    pub fn density(&self) -> f64 {
        let n = self.num_nodes();
        if n <= 1 {
            return 0.0;
        }
        self.num_edges() as f64 / (n * (n - 1)) as f64
    }

    /// True when `weight(i, j) == weight(j, i)` for all pairs.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        let n = self.num_nodes();
        for i in 0..n {
            for j in (i + 1)..n {
                if (self.weight(i, j) - self.weight(j, i)).abs() > 1e-12 {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the symmetrised graph `(A + Aᵀ) / 2`.
    #[must_use]
    pub fn symmetrized(&self) -> Self {
        let sym = self.weights.add(&self.weights.transpose()).scale(0.5);
        Self::new(sym)
    }

    /// Out-degree (weighted) of each node.
    #[must_use]
    pub fn out_degrees(&self) -> Tensor {
        self.weights.row_sums()
    }

    /// In-degree (weighted) of each node.
    #[must_use]
    pub fn in_degrees(&self) -> Tensor {
        self.weights.col_sums()
    }

    /// Rescales weights so the maximum edge weight is 1 (no-op for an
    /// empty graph).
    #[must_use]
    pub fn max_normalized(&self) -> Self {
        let max = self.weights.max();
        if max <= 0.0 {
            return self.clone();
        }
        Self {
            weights: self.weights.scale(1.0 / max),
        }
    }

    /// All directed edges `(i, j, w)` with positive weight, row-major.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let n = self.num_nodes();
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let w = self.weight(i, j);
                if w > 0.0 {
                    out.push((i, j, w));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_diagonal_and_clamps() {
        let t = Tensor::from_vec2(vec![vec![5.0, -1.0], vec![2.0, 7.0]]).unwrap();
        let a = AdjacencyMatrix::new(t);
        assert_eq!(a.weight(0, 0), 0.0);
        assert_eq!(a.weight(1, 1), 0.0);
        assert_eq!(a.weight(0, 1), 0.0); // clamped from -1
        assert_eq!(a.weight(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = AdjacencyMatrix::new(Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn density_of_complete_graph() {
        let a = AdjacencyMatrix::complete(5);
        assert_eq!(a.num_edges(), 20);
        assert!((a.density() - 1.0).abs() < 1e-12);
        assert!(AdjacencyMatrix::empty(5).density() == 0.0);
    }

    #[test]
    fn symmetry_detection_and_fix() {
        let mut a = AdjacencyMatrix::empty(3);
        a.set_weight(0, 1, 2.0);
        assert!(!a.is_symmetric());
        let s = a.symmetrized();
        assert!(s.is_symmetric());
        assert_eq!(s.weight(0, 1), 1.0);
        assert_eq!(s.weight(1, 0), 1.0);
    }

    #[test]
    fn degrees() {
        let mut a = AdjacencyMatrix::empty(3);
        a.set_weight(0, 1, 1.0);
        a.set_weight(0, 2, 2.0);
        a.set_weight(1, 2, 4.0);
        assert_eq!(a.out_degrees().data(), &[3.0, 4.0, 0.0]);
        assert_eq!(a.in_degrees().data(), &[0.0, 1.0, 6.0]);
    }

    #[test]
    fn set_weight_ignores_diagonal() {
        let mut a = AdjacencyMatrix::empty(2);
        a.set_weight(0, 0, 9.0);
        assert_eq!(a.weight(0, 0), 0.0);
    }

    #[test]
    fn max_normalized_scales_to_unit() {
        let mut a = AdjacencyMatrix::empty(2);
        a.set_weight(0, 1, 4.0);
        let n = a.max_normalized();
        assert_eq!(n.weight(0, 1), 1.0);
    }

    #[test]
    fn edges_enumerates_positive_weights() {
        let mut a = AdjacencyMatrix::empty(3);
        a.set_weight(2, 0, 1.5);
        let e = a.edges();
        assert_eq!(e, vec![(2, 0, 1.5)]);
    }
}
