//! Adjacency normalisations used inside the GNN models.

use crate::AdjacencyMatrix;
use ema_tensor::Tensor;

/// Symmetric GCN normalisation with self loops:
/// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` where `D̃` is the degree matrix of
/// `A + I`. This is the propagation matrix of Kipf & Welling GCNs and
/// the one used by A3TGCN's graph convolutions.
#[must_use]
pub fn gcn_norm(adj: &AdjacencyMatrix) -> Tensor {
    let n = adj.num_nodes();
    let a_tilde = adj.weights().add(&Tensor::eye(n));
    let deg = a_tilde.row_sums();
    let d_inv_sqrt: Vec<f64> = deg
        .data()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut out = a_tilde;
    for i in 0..n {
        for j in 0..n {
            let v = out.at2(i, j) * d_inv_sqrt[i] * d_inv_sqrt[j];
            out.set2(i, j, v);
        }
    }
    out
}

/// Row-stochastic normalisation `D^{-1} A` (random-walk transition
/// matrix). Rows with zero degree stay zero. Used by MTGNN's mix-hop
/// propagation.
#[must_use]
pub fn row_norm(adj: &AdjacencyMatrix) -> Tensor {
    let n = adj.num_nodes();
    let deg = adj.out_degrees();
    let mut out = adj.weights().clone();
    for i in 0..n {
        let d = deg.data()[i];
        if d > 0.0 {
            for j in 0..n {
                let v = out.at2(i, j) / d;
                out.set2(i, j, v);
            }
        }
    }
    out
}

/// Row-stochastic normalisation with self loops: `D̃^{-1} (A + I)`.
/// Guarantees every row sums to exactly 1.
#[must_use]
pub fn row_norm_self_loops(adj: &AdjacencyMatrix) -> Tensor {
    let n = adj.num_nodes();
    let a_tilde = adj.weights().add(&Tensor::eye(n));
    let deg = a_tilde.row_sums();
    let mut out = a_tilde;
    for i in 0..n {
        let d = deg.data()[i];
        for j in 0..n {
            let v = out.at2(i, j) / d;
            out.set2(i, j, v);
        }
    }
    out
}

/// The combinatorial Laplacian `L = D − A` of the symmetrised graph.
#[must_use]
pub fn laplacian(adj: &AdjacencyMatrix) -> Tensor {
    let sym = adj.symmetrized();
    let n = sym.num_nodes();
    let deg = sym.out_degrees();
    let mut out = sym.weights().neg();
    for i in 0..n {
        out.set2(i, i, deg.data()[i]);
    }
    out
}

/// The normalised Laplacian `L = I − D^{-1/2} A D^{-1/2}` of the
/// symmetrised graph; eigenvalues lie in `[0, 2]`.
#[must_use]
pub fn normalized_laplacian(adj: &AdjacencyMatrix) -> Tensor {
    let sym = adj.symmetrized();
    let n = sym.num_nodes();
    let deg = sym.out_degrees();
    let d_inv_sqrt: Vec<f64> = deg
        .data()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut out = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            let a = sym.weight(i, j) * d_inv_sqrt[i] * d_inv_sqrt[j];
            let v = if i == j {
                // Isolated nodes keep a unit diagonal (I term).
                1.0 - a
            } else {
                -a
            };
            out.set2(i, j, v);
        }
    }
    out
}

/// Estimates the largest eigenvalue of a symmetric matrix by power
/// iteration.
///
/// # Panics
/// Panics unless `m` is square rank 2.
#[must_use]
pub fn spectral_radius(m: &Tensor, iters: usize) -> f64 {
    assert_eq!(m.rank(), 2, "spectral_radius requires a matrix");
    let n = m.dims()[0];
    assert_eq!(n, m.dims()[1], "spectral_radius requires square input");
    let mut v = Tensor::filled(&[n], 1.0 / (n as f64).sqrt());
    let mut lambda = 0.0;
    for _ in 0..iters {
        let w = m.matvec(&v);
        let norm = w.norm();
        if norm < 1e-300 {
            return 0.0;
        }
        v = w.scale(1.0 / norm);
        lambda = v.dot(&m.matvec(&v));
    }
    lambda.abs()
}

/// The scaled Laplacian `L̃ = 2 L / λ_max − I` used by Chebyshev
/// convolutions; eigenvalues lie in `[−1, 1]`.
///
/// Uses the exact bound `λ_max = 2` of the normalized Laplacian (the
/// Kipf & Welling approximation) rather than a power-iteration
/// estimate: an *under*-estimated `λ_max` would push the scaled
/// spectrum outside `[−1, 1]` and make the Chebyshev recurrence blow
/// up, whereas the fixed bound merely compresses it slightly.
#[must_use]
pub fn scaled_laplacian(adj: &AdjacencyMatrix) -> Tensor {
    let l = normalized_laplacian(adj);
    let n = l.dims()[0];
    l.sub(&Tensor::eye(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> AdjacencyMatrix {
        // 0 — 1 — 2 (unit weights, symmetric)
        let mut a = AdjacencyMatrix::empty(3);
        a.set_weight(0, 1, 1.0);
        a.set_weight(1, 0, 1.0);
        a.set_weight(1, 2, 1.0);
        a.set_weight(2, 1, 1.0);
        a
    }

    #[test]
    fn gcn_norm_is_symmetric_for_symmetric_input() {
        let g = gcn_norm(&path_graph());
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.at2(i, j) - g.at2(j, i)).abs() < 1e-12);
            }
        }
        // Known value: node 0 has degree 2 (self loop + edge);
        // Â[0][0] = 1/2.
        assert!((g.at2(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gcn_norm_spectral_radius_at_most_one() {
        let g = gcn_norm(&path_graph());
        let r = spectral_radius(&g, 200);
        assert!(r <= 1.0 + 1e-9, "spectral radius {r} > 1");
    }

    #[test]
    fn row_norm_rows_sum_to_one_or_zero() {
        let mut a = path_graph();
        a.set_weight(0, 2, 3.0); // asymmetric extra edge
        let r = row_norm(&a);
        for i in 0..3 {
            let s = r.row(i).sum();
            assert!((s - 1.0).abs() < 1e-12 || s == 0.0, "row {i} sums to {s}");
        }
    }

    #[test]
    fn row_norm_self_loops_always_stochastic() {
        let a = AdjacencyMatrix::empty(4); // even isolated nodes
        let r = row_norm_self_loops(&a);
        for i in 0..4 {
            assert!((r.row(i).sum() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(&path_graph());
        for i in 0..3 {
            assert!(l.row(i).sum().abs() < 1e-12);
        }
        assert_eq!(l.at2(1, 1), 2.0);
    }

    #[test]
    fn normalized_laplacian_diagonal_is_one_for_connected() {
        let l = normalized_laplacian(&path_graph());
        for i in 0..3 {
            assert!((l.at2(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_laplacian_eigenvalues_in_range() {
        let l = normalized_laplacian(&path_graph());
        let r = spectral_radius(&l, 200);
        assert!(r <= 2.0 + 1e-9, "λmax {r} > 2");
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let m = Tensor::from_vec2(vec![vec![3.0, 0.0], vec![0.0, -5.0]]).unwrap();
        let r = spectral_radius(&m, 100);
        assert!((r - 5.0).abs() < 1e-6);
    }

    #[test]
    fn scaled_laplacian_bounded() {
        let sl = scaled_laplacian(&path_graph());
        let r = spectral_radius(&sl, 200);
        assert!(r <= 1.0 + 1e-6, "scaled λmax {r} > 1");
    }

    #[test]
    fn empty_graph_normalisations_are_finite() {
        let a = AdjacencyMatrix::empty(3);
        assert!(gcn_norm(&a).all_finite());
        assert!(row_norm(&a).all_finite());
        assert!(normalized_laplacian(&a).all_finite());
        assert!(scaled_laplacian(&a).all_finite());
    }
}
