//! Graph sparsification: density thresholds (GDT) and per-row top-k.

use crate::AdjacencyMatrix;

/// The paper's graph density threshold levels (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DensityThreshold {
    /// Keep the strongest 20% of possible edges.
    Gdt20,
    /// Keep the strongest 40% of possible edges.
    Gdt40,
    /// Keep every edge (no sparsification).
    Gdt100,
}

impl DensityThreshold {
    /// The retained fraction of possible edges.
    #[must_use]
    pub fn fraction(self) -> f64 {
        match self {
            DensityThreshold::Gdt20 => 0.20,
            DensityThreshold::Gdt40 => 0.40,
            DensityThreshold::Gdt100 => 1.0,
        }
    }

    /// All levels, in Table-I order.
    #[must_use]
    pub fn all() -> [DensityThreshold; 3] {
        [
            DensityThreshold::Gdt20,
            DensityThreshold::Gdt40,
            DensityThreshold::Gdt100,
        ]
    }

    /// The paper's label, e.g. `"20%"`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DensityThreshold::Gdt20 => "20%",
            DensityThreshold::Gdt40 => "40%",
            DensityThreshold::Gdt100 => "100%",
        }
    }
}

/// Keeps only the `fraction` strongest directed edges (by weight),
/// zeroing the rest. `fraction` is relative to the number of *possible*
/// off-diagonal edges, matching the paper's GDT definition.
///
/// Undirected (symmetric) inputs stay symmetric because edge pairs have
/// equal weights and ties are broken consistently by index.
///
/// # Panics
/// Panics unless `0 < fraction <= 1`.
#[must_use]
pub fn sparsify_to_density(adj: &AdjacencyMatrix, fraction: f64) -> AdjacencyMatrix {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "density fraction must be in (0, 1], got {fraction}"
    );
    if fraction >= 1.0 {
        return adj.clone();
    }
    let n = adj.num_nodes();
    let possible = n * (n - 1);
    let keep = ((possible as f64 * fraction).round() as usize).max(1);

    let mut edges = adj.edges();
    if edges.len() <= keep {
        return adj.clone();
    }
    // Sort by weight descending, ties by (i, j) for determinism.
    edges.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    let mut out = AdjacencyMatrix::empty(n);
    for &(i, j, w) in edges.iter().take(keep) {
        out.set_weight(i, j, w);
    }
    out
}

/// Convenience: sparsify to one of the paper's GDT levels.
#[must_use]
pub fn sparsify(adj: &AdjacencyMatrix, gdt: DensityThreshold) -> AdjacencyMatrix {
    sparsify_to_density(adj, gdt.fraction())
}

/// Keeps the `k` strongest outgoing edges per node (MTGNN's graph-
/// learning sparsifier), zeroing the rest.
///
/// # Panics
/// Panics if `k == 0`.
#[must_use]
pub fn top_k_per_row(adj: &AdjacencyMatrix, k: usize) -> AdjacencyMatrix {
    assert!(k > 0, "top-k requires k > 0");
    let n = adj.num_nodes();
    let mut out = AdjacencyMatrix::empty(n);
    for i in 0..n {
        let mut row: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, adj.weight(i, j)))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        row.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        for &(j, w) in row.iter().take(k) {
            out.set_weight(i, j, w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::{Rng64, Tensor};

    fn random_graph(n: usize, seed: u64) -> AdjacencyMatrix {
        let mut rng = Rng64::seed_from(seed);
        AdjacencyMatrix::new(Tensor::rand_uniform(&[n, n], 0.0, 1.0, &mut rng))
    }

    #[test]
    fn gdt_fraction_edge_counts() {
        let a = random_graph(10, 1); // 90 possible edges, all present
        let s20 = sparsify(&a, DensityThreshold::Gdt20);
        assert_eq!(s20.num_edges(), 18);
        let s40 = sparsify(&a, DensityThreshold::Gdt40);
        assert_eq!(s40.num_edges(), 36);
        let s100 = sparsify(&a, DensityThreshold::Gdt100);
        assert_eq!(s100.num_edges(), 90);
    }

    #[test]
    fn sparsify_keeps_strongest() {
        let mut a = AdjacencyMatrix::empty(3);
        a.set_weight(0, 1, 0.9);
        a.set_weight(1, 2, 0.5);
        a.set_weight(2, 0, 0.1);
        // 6 possible edges; 20% -> keep round(1.2)=1 edge.
        let s = sparsify_to_density(&a, 0.2);
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.weight(0, 1), 0.9);
    }

    #[test]
    fn sparsify_preserves_symmetry() {
        let a = random_graph(8, 2).symmetrized();
        let s = sparsify(&a, DensityThreshold::Gdt40);
        assert!(s.is_symmetric(), "GDT sparsification broke symmetry");
    }

    #[test]
    fn sparsify_noop_when_sparser_than_target() {
        let mut a = AdjacencyMatrix::empty(5);
        a.set_weight(0, 1, 1.0);
        let s = sparsify(&a, DensityThreshold::Gdt40);
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "density fraction")]
    fn sparsify_rejects_zero_fraction() {
        let _ = sparsify_to_density(&random_graph(4, 3), 0.0);
    }

    #[test]
    fn top_k_limits_out_degree() {
        let a = random_graph(10, 4);
        let t = top_k_per_row(&a, 3);
        for i in 0..10 {
            let deg = (0..10).filter(|&j| t.weight(i, j) > 0.0).count();
            assert!(deg <= 3, "node {i} kept {deg} edges");
        }
        assert_eq!(t.num_edges(), 30);
    }

    #[test]
    fn top_k_keeps_strongest_per_row() {
        let mut a = AdjacencyMatrix::empty(4);
        a.set_weight(0, 1, 0.1);
        a.set_weight(0, 2, 0.9);
        a.set_weight(0, 3, 0.5);
        let t = top_k_per_row(&a, 2);
        assert_eq!(t.weight(0, 2), 0.9);
        assert_eq!(t.weight(0, 3), 0.5);
        assert_eq!(t.weight(0, 1), 0.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DensityThreshold::Gdt20.label(), "20%");
        assert_eq!(DensityThreshold::all().len(), 3);
    }
}
