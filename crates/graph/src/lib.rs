//! # ema-graph
//!
//! Graph structures and transformations for GNN-based EMA forecasting:
//!
//! * [`AdjacencyMatrix`] — a weighted, possibly directed variable-
//!   interaction graph over the `V` EMA variables;
//! * normalisation (symmetric GCN normalisation, row-stochastic,
//!   scaled Laplacian) in [`normalize`];
//! * sparsification to a *graph density threshold* (GDT) as used in the
//!   paper's Experiment B, plus per-row top-k (MTGNN) in [`sparsify`];
//! * random graph generation (the paper's RAND control) in [`random`];
//! * Chebyshev polynomial stacks for ASTGCN's spectral convolutions in
//!   [`chebyshev`];
//! * comparison statistics between graphs (edge-weight correlation,
//!   density, degree summaries) in [`stats`].

#![warn(missing_docs)]

mod adjacency;
pub mod chebyshev;
pub mod export;
pub mod normalize;
pub mod random;
pub mod sparse;
pub mod sparsify;
pub mod stats;

pub use adjacency::AdjacencyMatrix;
