//! Test-set evaluation per the paper's Eq. (1).

use crate::train::predict_all;
use ema_data::WindowedData;
use ema_models::Forecaster;
use ema_tensor::Tensor;

/// MSE of a model over a window set (Eq. (1) for one individual):
/// the squared error averaged over all test time points and variables.
#[must_use]
pub fn evaluate_mse(model: &dyn Forecaster, windows: &WindowedData) -> f64 {
    let preds = predict_all(model, windows, 0);
    preds.mse(&windows.targets_matrix())
}

/// Per-variable MSEs over a window set, length `V` — supports the
/// paper's future-work note on per-variable error analysis.
#[must_use]
pub fn evaluate_per_variable_mse(model: &dyn Forecaster, windows: &WindowedData) -> Vec<f64> {
    let preds = predict_all(model, windows, 0);
    let targets = windows.targets_matrix();
    let (n, v) = (preds.dims()[0], preds.dims()[1]);
    let mut out = vec![0.0; v];
    for (j, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n {
            let d = preds.at2(i, j) - targets.at2(i, j);
            acc += d * d;
        }
        *slot = acc / n as f64;
    }
    out
}

/// MSE of the naive persistence baseline (predict `x_t = x_{t-1}`) over
/// a window set — a useful calibration point for the tables.
#[must_use]
pub fn persistence_mse(windows: &WindowedData) -> f64 {
    assert!(!windows.is_empty(), "no windows");
    let mut acc = 0.0;
    let mut count = 0usize;
    for (input, target) in windows.inputs.iter().zip(windows.targets.iter()) {
        let last = input.row(input.dims()[0] - 1);
        for (p, t) in last.data().iter().zip(target.data().iter()) {
            let d = p - t;
            acc += d * d;
            count += 1;
        }
    }
    acc / count as f64
}

/// MSE of predicting all zeros — for z-normalised data this approximates
/// the variance of the test targets (≈ the "predict the mean" baseline).
#[must_use]
pub fn zero_prediction_mse(windows: &WindowedData) -> f64 {
    let targets = windows.targets_matrix();
    targets.mse(&Tensor::zeros(targets.dims()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_data::make_windows;
    use ema_models::{build_model, ModelConfig, ModelKind};

    fn windows() -> WindowedData {
        let mut rng = ema_tensor::Rng64::seed_from(3);
        let data = Tensor::rand_normal(&[30, 4], 0.0, 1.0, &mut rng);
        make_windows(&data, 2)
    }

    #[test]
    fn mse_is_nonnegative_and_finite() {
        let w = windows();
        let model = build_model(ModelKind::Lstm, 4, 2, &ModelConfig::tiny(0), None);
        let mse = evaluate_mse(&*model, &w);
        assert!(mse.is_finite() && mse >= 0.0);
    }

    #[test]
    fn per_variable_mse_averages_to_total() {
        let w = windows();
        let model = build_model(ModelKind::Lstm, 4, 2, &ModelConfig::tiny(0), None);
        let total = evaluate_mse(&*model, &w);
        let per_var = evaluate_per_variable_mse(&*model, &w);
        let mean: f64 = per_var.iter().sum::<f64>() / per_var.len() as f64;
        assert!((mean - total).abs() < 1e-9);
    }

    #[test]
    fn persistence_beats_noise_on_smooth_series() {
        // Slowly-varying series: persistence should do very well.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|t| vec![(t as f64 * 0.05).sin(), (t as f64 * 0.05).cos()])
            .collect();
        let w = make_windows(&Tensor::from_vec2(rows).unwrap(), 2);
        assert!(persistence_mse(&w) < 0.01);
    }

    #[test]
    fn zero_prediction_matches_target_power() {
        let w = windows();
        let targets = w.targets_matrix();
        let expected = targets.square().mean();
        assert!((zero_prediction_mse(&w) - expected).abs() < 1e-12);
    }
}
