//! The in-house JSON value model, writer and parser.
//!
//! The implementation moved to [`ema_obs::json`] so the observability
//! layer — which this crate depends on — can emit JSONL without a
//! dependency cycle. Every existing `ema_core::json` / `ema_core::Json`
//! path keeps working through this re-export; the type is literally the
//! same, so values cross the crate boundary freely.

pub use ema_obs::json::*;
