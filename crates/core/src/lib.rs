//! # ema-core
//!
//! The paper's personalized EMA forecasting pipeline, end to end:
//!
//! 1. generate (or load) a study of `N` individuals ([`ema_data`]);
//! 2. per individual: sequential 70/30 split, similarity-graph
//!    construction **from the training portion only**, GDT
//!    sparsification ([`ema_similarity`], [`ema_graph`]);
//! 3. full-batch training of a personalized model for 300 epochs with
//!    Adam at lr 0.01 ([`train`]);
//! 4. test-set MSE per Eq. (1), aggregated as mean(std) across
//!    individuals ([`evaluate`]);
//! 5. the paper's three experiments ([`experiments`]): model comparison
//!    (Table II), graph structure & sparsity (Table III), and static vs
//!    MTGNN-learned graphs (Fig. 3), plus ablations.
//!
//! Cohorts are embarrassingly parallel (one personalized model per
//! individual), so step 3 is scheduled by the [`exec`] cohort execution
//! engine — a zero-dependency thread pool sized by `--threads` /
//! `EMA_THREADS` — with per-individual random streams split from the
//! run seed so results are byte-identical at every thread count.
//!
//! The pipeline is instrumented end to end with [`ema_obs`] telemetry:
//! per-individual/per-condition spans, per-epoch `train_epoch` events
//! (loss, gradient norm) and early-stop decisions, controlled by
//! `EMA_OBS=off|summary|full` (default `summary`). Telemetry is
//! determinism-safe — timing only ever appears in `results/obs/`
//! output, never in results or checkpoint JSON.
//!
//! ```no_run
//! use ema_core::experiments::{ExperimentScale, run_experiment_a};
//!
//! let table2 = run_experiment_a(&ExperimentScale::quick());
//! println!("{}", table2.render());
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cluster;
pub mod cohort;
pub mod evaluate;
pub mod exec;
pub mod experiments;
pub mod forecast;
pub mod json;
pub mod metrics;
pub mod pipeline;
pub mod results;
pub mod train;

pub use checkpoint::Checkpoint;
pub use cluster::{plan_clusters, ClusterCheckpointCache, ClusterPlan, TrainStrategy};
pub use cohort::{run_cohort_batch, run_cohort_sharded, train_cohort, CohortPath};
pub use exec::{Backend, Executor, Job, JobError, JobResult};
pub use forecast::{horizon_mse, iterative_forecast};
pub use json::{Json, JsonError};
pub use metrics::{compute_metrics, evaluate_metrics, ForecastMetrics};
pub use pipeline::{
    graph_for_individual, run_cohort, run_cohort_with, run_individual, GraphSpec,
    IndividualOutcome, RunSpec,
};
pub use results::{BoxplotStats, CellStat, ResultTable};
pub use train::{train_model, ForwardPath, TrainConfig, TrainReport};
pub use ema_tensor::{set_kernel_backend, with_kernel_backend, KernelBackend, KernelScope};
