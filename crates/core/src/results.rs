//! Result aggregation: mean(std) cells, rendered tables and boxplot
//! statistics for the figure reproduction.

use crate::json::{Json, JsonError};
use std::fmt;

/// A table cell in the paper's `mean(std)` notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStat {
    /// Mean across individuals.
    pub mean: f64,
    /// Standard deviation across individuals.
    pub std: f64,
}

impl CellStat {
    /// Aggregates a sample of per-individual scores.
    ///
    /// # Panics
    /// Panics on an empty sample.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples to aggregate");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

impl fmt::Display for CellStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}({:.3})", self.mean, self.std)
    }
}

impl CellStat {
    /// JSON encoding: `{"mean": m, "std": s}`.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("mean", Json::Num(self.mean)),
            ("std", Json::Num(self.std)),
        ])
    }

    /// Decodes the [`Self::to_json_value`] encoding.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on a missing member or wrong type.
    pub fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            mean: v.require("mean")?.to_f64()?,
            std: v.require("std")?.to_f64()?,
        })
    }
}

/// A rendered results table with row labels and named columns,
/// serialisable so experiment runs can be recorded alongside
/// EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct ResultTable {
    /// Table caption.
    pub title: String,
    /// Column headers (excluding the leading model column).
    pub columns: Vec<String>,
    /// Rows: label plus one cell per column.
    pub rows: Vec<(String, Vec<CellStat>)>,
}

impl ResultTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<CellStat>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push((label.into(), cells));
    }

    /// The cell at (row label, column name), if present.
    #[must_use]
    pub fn cell(&self, row: &str, column: &str) -> Option<CellStat> {
        let col = self.columns.iter().position(|c| c == column)?;
        let (_, cells) = self.rows.iter().find(|(label, _)| label == row)?;
        cells.get(col).copied()
    }

    /// Renders the table as aligned plain text (the bench binaries print
    /// this next to the paper's numbers).
    #[must_use]
    pub fn render(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once("Model".len()))
            .max()
            .unwrap_or(8)
            + 2;
        let cell_width = 15usize;
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{:label_width$}", "Model"));
        for c in &self.columns {
            out.push_str(&format!("{c:>cell_width$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(label_width + cell_width * self.columns.len()));
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:label_width$}"));
            for cell in cells {
                out.push_str(&format!("{:>cell_width$}", cell.to_string()));
            }
            out.push('\n');
        }
        out
    }

    /// JSON encoding: `{"title": ..., "columns": [...], "rows":
    /// [[label, [cells...]], ...]}` (rows as two-element arrays, the
    /// same layout the previous serde tuple encoding produced).
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            (
                "columns",
                Json::Arr(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(label, cells)| {
                            Json::Arr(vec![
                                Json::Str(label.clone()),
                                Json::Arr(cells.iter().map(CellStat::to_json_value).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialises the table to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Parses a table from its [`Self::to_json`] encoding.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on malformed JSON or a wrong shape.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let v = Json::parse(json)?;
        let columns = v
            .require("columns")?
            .to_arr()?
            .iter()
            .map(|c| c.to_str().map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        let mut rows = Vec::new();
        for row in v.require("rows")?.to_arr()? {
            let pair = row.to_arr()?;
            if pair.len() != 2 {
                return Err(JsonError {
                    line: 0,
                    col: 0,
                    msg: format!("table row must be [label, cells], got {} items", pair.len()),
                });
            }
            let cells = pair[1]
                .to_arr()?
                .iter()
                .map(CellStat::from_json_value)
                .collect::<Result<Vec<_>, _>>()?;
            rows.push((pair[0].to_str()?.to_string(), cells));
        }
        Ok(Self {
            title: v.require("title")?.to_str()?.to_string(),
            columns,
            rows,
        })
    }
}

/// Five-number summary plus mean, for reproducing Fig. 3's boxplots as
/// text/CSV series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotStats {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean (printed in black in the paper's figure).
    pub mean: f64,
}

impl BoxplotStats {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let idx = p * (sorted.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        Self {
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: sorted[sorted.len() - 1],
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }
}

impl BoxplotStats {
    /// JSON encoding with one member per summary statistic.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("min", Json::Num(self.min)),
            ("q1", Json::Num(self.q1)),
            ("median", Json::Num(self.median)),
            ("q3", Json::Num(self.q3)),
            ("max", Json::Num(self.max)),
            ("mean", Json::Num(self.mean)),
        ])
    }

    /// Decodes the [`Self::to_json_value`] encoding.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on a missing member or wrong type.
    pub fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            min: v.require("min")?.to_f64()?,
            q1: v.require("q1")?.to_f64()?,
            median: v.require("median")?.to_f64()?,
            q3: v.require("q3")?.to_f64()?,
            max: v.require("max")?.to_f64()?,
            mean: v.require("mean")?.to_f64()?,
        })
    }
}

impl fmt::Display for BoxplotStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.3} | q1 {:.3} | med {:.3} | q3 {:.3} | max {:.3} | mean {:.3}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

/// Mean relative percentage change between paired samples:
/// `100 · mean((b_i − a_i) / a_i)` — the red annotations of Fig. 3
/// (negative = improvement when `b` is the learned-graph condition).
///
/// # Panics
/// Panics on length mismatch or empty input.
#[must_use]
pub fn mean_relative_change_percent(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired samples must match");
    assert!(!a.is_empty(), "no samples");
    let total: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| if x != 0.0 { (y - x) / x } else { 0.0 })
        .sum();
    100.0 * total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_stat_formats_like_paper() {
        let c = CellStat {
            mean: 0.8512,
            std: 0.4304,
        };
        assert_eq!(c.to_string(), "0.851(0.430)");
    }

    #[test]
    fn cell_stat_from_samples() {
        let c = CellStat::from_samples(&[1.0, 2.0, 3.0]);
        assert!((c.mean - 2.0).abs() < 1e-12);
        assert!((c.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn table_round_trip_and_lookup() {
        let mut t = ResultTable::new("Test", vec!["Seq1".into(), "Seq2".into()]);
        t.push_row(
            "LSTM",
            vec![
                CellStat { mean: 1.0, std: 0.5 },
                CellStat { mean: 0.9, std: 0.4 },
            ],
        );
        let json = t.to_json();
        let parsed = ResultTable::from_json(&json).unwrap();
        assert_eq!(parsed.cell("LSTM", "Seq2").unwrap().mean, 0.9);
        assert!(parsed.cell("LSTM", "Seq9").is_none());
        assert!(t.render().contains("0.900(0.400)"));
    }

    #[test]
    fn table_serialization_is_stable_and_f64_exact() {
        // Edge-case cell values must survive the round trip bit-exactly,
        // and serialising twice must give identical bytes (the
        // determinism guard relies on this).
        let mut t = ResultTable::new("Edges", vec!["C".into()]);
        for (label, mean, std) in [
            ("neg-zero", -0.0, 0.0),
            ("tiny", 5e-324, 1e-308),
            ("huge", 1.797_693_134_862_315_7e308, -1e308),
            ("ugly", 0.1 + 0.2, 1.0 / 3.0),
        ] {
            t.push_row(label, vec![CellStat { mean, std }]);
        }
        let json = t.to_json();
        assert_eq!(json, t.to_json(), "serialization is not deterministic");
        let parsed = ResultTable::from_json(&json).unwrap();
        for ((_, orig), (_, back)) in t.rows.iter().zip(parsed.rows.iter()) {
            assert_eq!(orig[0].mean.to_bits(), back[0].mean.to_bits());
            assert_eq!(orig[0].std.to_bits(), back[0].std.to_bits());
        }
        // -0.0 specifically keeps its sign through the pipeline.
        assert!(parsed.rows[0].1[0].mean.is_sign_negative());
    }

    #[test]
    fn boxplot_json_round_trip() {
        let s = BoxplotStats::from_samples(&[0.3, 1.7, -2.0, 0.9, 4.4]);
        let back = BoxplotStats::from_json_value(&s.to_json_value()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn table_rejects_ragged_rows() {
        let mut t = ResultTable::new("Test", vec!["A".into()]);
        t.push_row("x", vec![]);
    }

    #[test]
    fn boxplot_of_known_sample() {
        let s = BoxplotStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn relative_change_sign() {
        // b improves on a by 10% → −10.
        let a = [1.0, 2.0];
        let b = [0.9, 1.8];
        assert!((mean_relative_change_percent(&a, &b) + 10.0).abs() < 1e-9);
    }
}
