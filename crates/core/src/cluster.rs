//! Cluster-then-personalize training: K-medoids cluster models, a
//! cluster-checkpoint cache, and warm-start fine-tuning.
//!
//! At cohort scale, training every individual from scratch repeats most
//! of the work: EMA studies cluster into a few behavioural regimes
//! (cf. the authors' companion paper *Model-based Clustering of
//! Individuals' EMA Time-series for Improving Forecasting*). The
//! cluster phase ([`plan_clusters`]) samples representative
//! individuals, clusters their flattened **training-split** series with
//! seeded K-medoids ([`ema_similarity::k_medoids`] — no test leakage),
//! trains **one model per cluster** on the medoid individuals via the
//! existing [`crate::cohort::train_cohort`] machinery, and stores the
//! resulting parameters in an in-memory [`ClusterCheckpointCache`]
//! keyed `(model, outcome, cluster)` (persistable as checkpoint JSON).
//! The fine-tune phase then assigns each streamed individual to its
//! nearest medoid and trains `fine_tune_epochs` epochs from the
//! cluster checkpoint instead of `epochs` from scratch — K trainings
//! plus N cheap fine-tunes instead of N full trainings.
//!
//! **Determinism:** the plan is built once on the calling thread of
//! [`crate::cohort::run_cohort_sharded`] before any shard job spawns —
//! representative ids, medoids and checkpoints are identical at every
//! thread count, shard size and [`crate::cohort::CohortPath`]. Cluster
//! training seeds derive from `(run seed, medoid id)` exactly as the
//! medoid's idiographic run would; fine-tune runs keep each
//! individual's own derived stream (see the warm-start RNG contract on
//! [`crate::train::TrainConfig::warm_start`]).
//!
//! Obs: `cluster_plan` / `cluster_distances` / `cluster_train` spans,
//! `cluster.cache_{hits,misses}` counters (misses = cluster trainings,
//! hits = fine-tune lookups) and a `cluster.fine_tune_epochs`
//! histogram.

use crate::checkpoint::Checkpoint;
use crate::cohort::{cohort_batch_supported, train_cohort};
use crate::json::Json;
use crate::pipeline::{graph_for_individual, run_individual, GraphSpec, IndividualOutcome, RunSpec};
use crate::train::{train_model, TrainConfig};
use ema_data::{make_windows, split_train_test, EmaGenerator, Individual};
use ema_graph::AdjacencyMatrix;
use ema_models::{
    build_model, A3tgcn, Astgcn, CohortForecaster, LstmForecaster, ModelKind, Mtgnn,
};
use ema_obs::metrics::EPOCH_BUCKETS;
use ema_obs::span;
use ema_similarity::{
    argmin_distance, flatten_series, k_medoids, pairwise_series_distances, series_distance,
    SeriesMetric,
};
use ema_tensor::Tensor;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// The RNG stream id the K-medoids init draws from, derived as
/// `derive_stream_seed(run seed, CLUSTER_SEED_STREAM)`. Individual
/// streams use ids `0..N`, so the clustering stream never collides.
const CLUSTER_SEED_STREAM: u64 = u64::MAX;

/// The Sakoe–Chiba band for the per-individual DTW distance (roughly
/// one EMA day at 8 beeps/day, matching [`ema_similarity::dtw`]'s
/// default; auto-widened for unequal study lengths).
const SERIES_DTW_BAND: usize = 10;

/// How sharded cohort runs train each individual
/// ([`RunSpec::train_strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainStrategy {
    /// The paper's default: every individual trains its own model from
    /// scratch for the spec's full epoch schedule.
    #[default]
    Idiographic,
    /// Cluster-then-personalize: K-medoids over representative
    /// training-split series, one cluster model trained per medoid,
    /// then each individual fine-tunes `fine_tune_epochs` epochs from
    /// its nearest cluster's checkpoint. `k = 1` with
    /// `fine_tune_epochs = 0` is the nomothetic baseline (one shared
    /// model, served as-is).
    ClusterWarmStart {
        /// Number of clusters K (clamped to the cohort size).
        k: usize,
        /// Epochs each cluster model trains on its medoid individual.
        cluster_epochs: usize,
        /// Epochs each individual fine-tunes from its cluster
        /// checkpoint (0 = pure restore, no personalization).
        fine_tune_epochs: usize,
    },
}

/// In-memory cluster-checkpoint cache, keyed
/// `(model label, outcome key, cluster index)`. The outcome key names
/// the run condition the checkpoints were trained under (graph spec +
/// window length); a cache never serves a checkpoint across
/// conditions. Persistable to/from JSON (each entry reuses the
/// [`Checkpoint`] JSON schema, bit-exact f64).
#[derive(Debug, Clone, Default)]
pub struct ClusterCheckpointCache {
    entries: BTreeMap<(String, String, usize), Arc<Checkpoint>>,
}

impl ClusterCheckpointCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores a cluster checkpoint.
    pub fn insert(&mut self, model: &str, outcome: &str, cluster: usize, ckpt: Arc<Checkpoint>) {
        self.entries.insert((model.to_string(), outcome.to_string(), cluster), ckpt);
    }

    /// Looks up a cluster checkpoint, bumping the
    /// `cluster.cache_hits` / `cluster.cache_misses` obs counters. A
    /// miss during [`plan_clusters`] is what triggers a cluster
    /// training, so misses count cluster trainings and hits count
    /// fine-tune lookups.
    #[must_use]
    pub fn get(&self, model: &str, outcome: &str, cluster: usize) -> Option<Arc<Checkpoint>> {
        let found = self
            .entries
            .get(&(model.to_string(), outcome.to_string(), cluster))
            .cloned();
        let obs = ema_obs::recorder();
        if found.is_some() {
            obs.inc_counter("cluster.cache_hits", 1);
        } else {
            obs.inc_counter("cluster.cache_misses", 1);
        }
        found
    }

    /// Serialises the cache to JSON:
    /// `{"entries": [{"model", "outcome", "cluster", "checkpoint"}, …]}`
    /// with each checkpoint in the bit-exact [`Checkpoint`] schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::obj(vec![(
            "entries",
            Json::Arr(
                self.entries
                    .iter()
                    .map(|((model, outcome, cluster), ckpt)| {
                        Json::obj(vec![
                            ("model", Json::Str(model.clone())),
                            ("outcome", Json::Str(outcome.clone())),
                            ("cluster", Json::Num(*cluster as f64)),
                            (
                                "checkpoint",
                                Json::parse(&ckpt.to_json())
                                    .expect("checkpoint JSON is well-formed"),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
        .pretty()
    }

    /// Parses a cache from [`Self::to_json`] output.
    ///
    /// # Errors
    /// Returns `io::Error` with `InvalidData` on malformed JSON.
    pub fn from_json(json: &str) -> io::Result<Self> {
        let invalid =
            |e: crate::json::JsonError| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
        let v = Json::parse(json).map_err(invalid)?;
        let mut entries = BTreeMap::new();
        for entry in v.require("entries").map_err(invalid)?.to_arr().map_err(invalid)? {
            let model = entry
                .require("model")
                .and_then(Json::to_str)
                .map_err(invalid)?
                .to_string();
            let outcome = entry
                .require("outcome")
                .and_then(Json::to_str)
                .map_err(invalid)?
                .to_string();
            let cluster = entry
                .require("cluster")
                .and_then(Json::to_usize)
                .map_err(invalid)?;
            let ckpt = Checkpoint::from_json(&entry.require("checkpoint").map_err(invalid)?.pretty())?;
            entries.insert((model, outcome, cluster), Arc::new(ckpt));
        }
        Ok(Self { entries })
    }

    /// Writes the cache to a file.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a cache from a file.
    ///
    /// # Errors
    /// Propagates filesystem and parse errors.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

/// The outcome key a spec's checkpoints are cached under: the run
/// condition (graph spec + window length) that must match for a
/// checkpoint to be reusable.
#[must_use]
pub fn outcome_key(spec: &RunSpec) -> String {
    format!("{}@seq{}", spec.graph.label(), spec.seq_len)
}

/// The trained cluster phase: medoid series for assignment plus the
/// checkpoint cache for warm starts. Built once per
/// [`crate::cohort::run_cohort_sharded`] run by [`plan_clusters`];
/// read-only afterwards, shared across shard jobs.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// Study ids of the K medoid individuals, in cluster order.
    pub medoid_ids: Vec<usize>,
    /// Epochs each individual fine-tunes from its cluster checkpoint.
    pub fine_tune_epochs: usize,
    /// The cluster-checkpoint cache.
    pub cache: ClusterCheckpointCache,
    medoid_series: Vec<Vec<f64>>,
    metric: SeriesMetric,
    model_key: String,
    outcome: String,
}

impl ClusterPlan {
    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.medoid_ids.len()
    }

    /// Assigns an individual to its nearest cluster by training-split
    /// series distance (ties to the lowest cluster index — the same
    /// rule K-medoids itself uses).
    #[must_use]
    pub fn assign(&self, train: &Tensor) -> usize {
        let flat = flatten_series(train);
        argmin_distance(
            self.medoid_series
                .iter()
                .map(|m| series_distance(&flat, m, self.metric)),
        )
    }

    /// The cluster's checkpoint (a cache hit by construction).
    ///
    /// # Panics
    /// Panics if the cluster was never trained — [`plan_clusters`]
    /// fills every cluster, so this indicates a corrupted plan.
    #[must_use]
    pub fn checkpoint(&self, cluster: usize) -> Arc<Checkpoint> {
        self.cache
            .get(&self.model_key, &self.outcome, cluster)
            .expect("every planned cluster has a cached checkpoint")
    }

    /// [`run_individual`] warm-started from this plan: assign from the
    /// training split, then fine-tune from the cluster checkpoint —
    /// the per-individual oracle of the batched warm path.
    #[must_use]
    pub fn run_individual_warm(&self, id: usize, data: &Tensor, spec: &RunSpec) -> IndividualOutcome {
        let (train, _) = split_train_test(data, spec.train_fraction);
        let cluster = self.assign(&train);
        let mut warm_spec = spec.clone();
        warm_spec.train_config.epochs = self.fine_tune_epochs;
        warm_spec.train_config.warm_start = Some(self.checkpoint(cluster));
        let outcome = run_individual(id, data, &warm_spec);
        ema_obs::recorder().observe(
            "cluster.fine_tune_epochs",
            &EPOCH_BUCKETS,
            outcome.epochs_run as f64,
        );
        outcome
    }
}

/// Runs the cluster phase for a sharded cohort run whose spec carries
/// [`TrainStrategy::ClusterWarmStart`]: sample representative
/// individuals, cluster their training-split series with seeded
/// K-medoids, train one model per cluster on the medoid individuals
/// (via [`train_cohort`] where the model supports cohort batching,
/// per-individual [`train_model`] otherwise), and cache the resulting
/// checkpoints.
///
/// # Panics
/// Panics when the spec's strategy is [`TrainStrategy::Idiographic`],
/// when `cluster_epochs` is zero, or on an empty study.
#[must_use]
pub fn plan_clusters(generator: &EmaGenerator, spec: &RunSpec) -> ClusterPlan {
    let TrainStrategy::ClusterWarmStart { k, cluster_epochs, fine_tune_epochs } =
        spec.train_strategy
    else {
        panic!("plan_clusters requires TrainStrategy::ClusterWarmStart");
    };
    assert!(cluster_epochs > 0, "cluster models need at least one epoch");
    let n = generator.config().num_individuals;
    assert!(n > 0, "cannot cluster an empty study");
    let k = k.clamp(1, n);
    let metric = SeriesMetric::DtwBanded { band: SERIES_DTW_BAND };

    let _span = span!(
        "cluster_plan",
        model = spec.model.label(),
        k = k,
        cluster_epochs = cluster_epochs,
        fine_tune_epochs = fine_tune_epochs
    );

    // Representative sample: evenly spaced study ids (deterministic,
    // stream-order free), enough to give K-medoids texture without
    // materialising the study. Each representative is generated,
    // flattened (training split only) and dropped.
    let s = (4 * k).max(8).min(n);
    let rep_ids: Vec<usize> = (0..s).map(|j| j * n / s).collect();
    let rep_series: Vec<Vec<f64>> = {
        let _d = span!("cluster_distances", representatives = s);
        rep_ids
            .iter()
            .map(|&id| {
                let ind = generator
                    .generate_range(id, id + 1)
                    .pop()
                    .expect("generator yields the requested individual");
                let (train, _) = split_train_test(&ind.data, spec.train_fraction);
                flatten_series(&train)
            })
            .collect()
    };
    let distances = pairwise_series_distances(&rep_series, metric);
    let clustering = k_medoids(
        &distances,
        k,
        ema_tensor::derive_stream_seed(spec.train_config.seed, CLUSTER_SEED_STREAM),
    );

    let medoid_ids: Vec<usize> = clustering.medoids.iter().map(|&m| rep_ids[m]).collect();
    let medoid_series: Vec<Vec<f64>> =
        clustering.medoids.iter().map(|&m| rep_series[m].clone()).collect();

    // Train one model per cluster on its medoid individual.
    let model_key = spec.model.label().to_string();
    let outcome = outcome_key(spec);
    let mut cache = ClusterCheckpointCache::new();
    {
        let _t = span!("cluster_train", clusters = k);
        let medoids: Vec<Individual> = medoid_ids
            .iter()
            .flat_map(|&id| generator.generate_range(id, id + 1))
            .collect();
        let checkpoints = train_cluster_checkpoints(&medoids, spec, cluster_epochs);
        for (cluster, ckpt) in checkpoints.into_iter().enumerate() {
            // The miss records this cluster's training in the
            // cache-counter ledger (misses = trainings).
            assert!(cache.get(&model_key, &outcome, cluster).is_none());
            cache.insert(&model_key, &outcome, cluster, Arc::new(ckpt));
        }
    }

    ClusterPlan {
        medoid_ids,
        fine_tune_epochs,
        cache,
        medoid_series,
        metric,
        model_key,
        outcome,
    }
}

/// Trains one cluster model per medoid individual and captures its
/// parameters. Cohort-batched where the model supports it, matching
/// [`crate::cohort::run_cohort_batch`]'s model construction exactly;
/// the VAR baseline falls back to per-individual [`train_model`].
fn train_cluster_checkpoints(
    medoids: &[Individual],
    spec: &RunSpec,
    cluster_epochs: usize,
) -> Vec<Checkpoint> {
    if !cohort_batch_supported(spec.model) {
        return medoids
            .iter()
            .map(|ind| {
                let (train, _) = split_train_test(&ind.data, spec.train_fraction);
                let v = ind.data.dims()[1];
                let graph = cluster_graph(&train, spec);
                let mut model = build_model(
                    spec.model,
                    v,
                    spec.seq_len,
                    &spec.model_config,
                    graph.as_ref(),
                );
                let windows = make_windows(&train, spec.seq_len);
                let config = cluster_config(spec, cluster_epochs, ind.id);
                let _ = train_model(&mut *model, &windows, &config);
                Checkpoint::capture(model.params())
            })
            .collect();
    }
    match spec.model {
        ModelKind::Lstm => train_cluster_as(medoids, spec, cluster_epochs, |v, _graph| {
            LstmForecaster::new(v, &spec.model_config)
        }),
        ModelKind::A3tgcn => train_cluster_as(medoids, spec, cluster_epochs, |v, graph| {
            A3tgcn::with_options(
                v,
                graph.expect("A3TGCN requires a graph"),
                &spec.model_config,
                spec.use_attention,
            )
        }),
        ModelKind::Astgcn => train_cluster_as(medoids, spec, cluster_epochs, |v, graph| {
            Astgcn::with_options(
                v,
                spec.seq_len,
                graph.expect("ASTGCN requires a graph"),
                &spec.model_config,
                spec.use_spatial_attention,
            )
        }),
        ModelKind::Mtgnn => train_cluster_as(medoids, spec, cluster_epochs, |v, graph| {
            Mtgnn::with_learner(
                v,
                spec.seq_len,
                graph,
                &spec.model_config,
                spec.learn_graph,
                spec.graph_learner,
            )
        }),
        ModelKind::Var => unreachable!("gated by cohort_batch_supported"),
    }
}

/// The typed body of [`train_cluster_checkpoints`].
fn train_cluster_as<M, F>(
    medoids: &[Individual],
    spec: &RunSpec,
    cluster_epochs: usize,
    build: F,
) -> Vec<Checkpoint>
where
    M: CohortForecaster,
    F: Fn(usize, Option<&AdjacencyMatrix>) -> M,
{
    let mut models = Vec::with_capacity(medoids.len());
    let mut windows = Vec::with_capacity(medoids.len());
    let mut configs = Vec::with_capacity(medoids.len());
    for ind in medoids {
        let (train, _) = split_train_test(&ind.data, spec.train_fraction);
        let graph = cluster_graph(&train, spec);
        models.push(build(ind.data.dims()[1], graph.as_ref()));
        windows.push(make_windows(&train, spec.seq_len));
        configs.push(cluster_config(spec, cluster_epochs, ind.id));
    }
    let _ = train_cohort(&mut models, &windows, &configs);
    models.iter().map(|m| Checkpoint::capture(m.params())).collect()
}

/// The medoid's graph, built from its training split exactly as
/// [`run_individual`] would.
fn cluster_graph(train: &Tensor, spec: &RunSpec) -> Option<AdjacencyMatrix> {
    match &spec.graph {
        GraphSpec::None => None,
        GraphSpec::Static { metric, gdt } => Some(graph_for_individual(train, *metric, *gdt)),
        GraphSpec::Provided(g) => Some(g.clone()),
    }
}

/// The cluster-training config for one medoid: the spec's
/// hyper-parameters with the cluster epoch schedule and the medoid's
/// own derived dropout stream (identical to its idiographic run's).
fn cluster_config(spec: &RunSpec, cluster_epochs: usize, medoid_id: usize) -> TrainConfig {
    let mut config = spec.train_config.clone();
    config.epochs = cluster_epochs;
    config.seed = ema_tensor::derive_stream_seed(spec.train_config.seed, medoid_id as u64);
    config.warm_start = None;
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::CohortPath;
    use ema_data::GeneratorConfig;
    use ema_models::ModelConfig;

    fn warm_spec(model: ModelKind, graph: GraphSpec) -> RunSpec {
        RunSpec {
            model_config: ModelConfig::tiny(0),
            train_config: TrainConfig::quick(4, 3),
            train_strategy: TrainStrategy::ClusterWarmStart {
                k: 2,
                cluster_epochs: 3,
                fine_tune_epochs: 2,
            },
            ..RunSpec::new(model, graph, 2)
        }
    }

    fn generator() -> EmaGenerator {
        EmaGenerator::new(GeneratorConfig::quick(6, 4, 23))
    }

    #[test]
    fn plan_is_deterministic_and_complete() {
        let generator = generator();
        let spec = warm_spec(ModelKind::Lstm, GraphSpec::None);
        let a = plan_clusters(&generator, &spec);
        let b = plan_clusters(&generator, &spec);
        assert_eq!(a.medoid_ids, b.medoid_ids);
        assert_eq!(a.clusters(), 2);
        assert_eq!(a.cache.len(), 2);
        for c in 0..a.clusters() {
            let x = a.checkpoint(c);
            let y = b.checkpoint(c);
            assert_eq!(x.to_json(), y.to_json(), "cluster {c} checkpoints differ");
        }
    }

    #[test]
    fn assign_maps_medoids_to_their_own_cluster() {
        let generator = generator();
        let spec = warm_spec(ModelKind::Lstm, GraphSpec::None);
        let plan = plan_clusters(&generator, &spec);
        for (c, &id) in plan.medoid_ids.iter().enumerate() {
            let ind = generator.generate_range(id, id + 1).pop().unwrap();
            let (train, _) = split_train_test(&ind.data, spec.train_fraction);
            assert_eq!(plan.assign(&train), c, "medoid {id} not in its own cluster");
        }
    }

    #[test]
    fn k_clamps_to_cohort_size() {
        let generator = EmaGenerator::new(GeneratorConfig::quick(2, 4, 5));
        let mut spec = warm_spec(ModelKind::Lstm, GraphSpec::None);
        spec.train_strategy = TrainStrategy::ClusterWarmStart {
            k: 10,
            cluster_epochs: 2,
            fine_tune_epochs: 1,
        };
        let plan = plan_clusters(&generator, &spec);
        assert_eq!(plan.clusters(), 2);
    }

    #[test]
    fn cache_round_trips_through_json() {
        let generator = generator();
        let spec = warm_spec(ModelKind::Lstm, GraphSpec::None);
        let plan = plan_clusters(&generator, &spec);
        let json = plan.cache.to_json();
        let parsed = ClusterCheckpointCache::from_json(&json).unwrap();
        assert_eq!(parsed.len(), plan.cache.len());
        // Byte-identical re-serialisation: bit-exact f64 all the way.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn warm_individual_matches_manual_warm_start() {
        let generator = generator();
        let spec = warm_spec(ModelKind::Lstm, GraphSpec::None);
        let plan = plan_clusters(&generator, &spec);
        let ind = generator.generate_range(3, 4).pop().unwrap();
        let got = plan.run_individual_warm(ind.id, &ind.data, &spec);

        let (train, _) = split_train_test(&ind.data, spec.train_fraction);
        let mut manual = spec.clone();
        manual.train_config.epochs = plan.fine_tune_epochs;
        manual.train_config.warm_start = Some(plan.checkpoint(plan.assign(&train)));
        let want = run_individual(ind.id, &ind.data, &manual);
        assert_eq!(got.mse, want.mse);
        assert_eq!(got.final_train_loss, want.final_train_loss);
        assert_eq!(got.epochs_run, want.epochs_run);
    }

    #[test]
    fn sharded_warm_start_matches_per_individual_oracle() {
        let generator = generator();
        let spec = warm_spec(ModelKind::Lstm, GraphSpec::None);
        let oracle_spec = RunSpec { cohort_path: CohortPath::PerIndividual, ..spec.clone() };
        let key = |outcomes: &[IndividualOutcome]| -> Vec<(usize, f64, f64, usize)> {
            outcomes
                .iter()
                .map(|o| (o.id, o.mse, o.final_train_loss, o.epochs_run))
                .collect()
        };
        let exec = crate::exec::Executor::sequential();
        let batched = crate::cohort::run_cohort_sharded(&generator, &spec, 3, &exec);
        let oracle = crate::cohort::run_cohort_sharded(&generator, &oracle_spec, 2, &exec);
        assert_eq!(key(&batched), key(&oracle));
        // Fine-tuned runs are capped at the fine-tune schedule.
        assert!(batched.iter().all(|o| o.epochs_run <= 2));
    }

    #[test]
    fn nomothetic_zero_finetune_serves_the_shared_model() {
        let generator = generator();
        let mut spec = warm_spec(ModelKind::Lstm, GraphSpec::None);
        spec.train_strategy = TrainStrategy::ClusterWarmStart {
            k: 1,
            cluster_epochs: 3,
            fine_tune_epochs: 0,
        };
        let exec = crate::exec::Executor::sequential();
        let out = crate::cohort::run_cohort_sharded(&generator, &spec, 3, &exec);
        assert_eq!(out.len(), 6);
        for o in &out {
            assert_eq!(o.epochs_run, 0, "individual {} trained", o.id);
            assert_eq!(o.final_train_loss, 0.0);
            assert!(o.mse.is_finite());
        }
    }
}
