//! Cohort-batched training: one tape graph per shard of B individuals,
//! scheduled as streaming shard jobs on the [`crate::exec`] engine.
//!
//! [`train_cohort`] is the grouped-operand analog of
//! [`crate::train::train_model`]: every epoch, all B individuals'
//! windows forward through **one** tape graph
//! ([`CohortForecaster::predict_cohort`]), per-individual MSE losses are
//! summed into one scalar, and one backward pass yields every
//! individual's gradients — bit-identical to B separate `train_model`
//! runs (each loss node receives exactly the seed gradient `1.0`
//! through the pairwise add chain, and every grouped op matches the
//! per-individual op per row block; enforced by
//! `crates/models/tests/batched_equivalence.rs` and
//! `tests/determinism.rs`).
//!
//! Per-individual state (Adam moments, RNG stream, early-stopping
//! counters) stays per-individual: an individual that early-stops
//! leaves the active group, the [`CohortBatch`] is rebuilt without it,
//! and — per the cohort RNG contract — it stops consuming draws exactly
//! as its standalone run would.
//!
//! [`run_cohort_sharded`] streams a synthetic study through the
//! executor in shards of `shard_size` individuals: each shard job
//! *generates* its slice of the study on the worker
//! ([`EmaGenerator::generate_range`]), trains it as one cohort batch,
//! evaluates, and drops the data — so peak memory is bounded by
//! (workers × shard), not the study size. Results are byte-identical at
//! every `(thread count, shard size)` pair and to the per-individual
//! oracle ([`CohortPath::PerIndividual`]).

use crate::cluster::{plan_clusters, ClusterPlan, TrainStrategy};
use crate::evaluate::{evaluate_mse, evaluate_per_variable_mse};
use crate::exec::{expect_all, Executor, Job};
use crate::pipeline::{graph_for_individual, run_individual, GraphSpec, IndividualOutcome, RunSpec};
use crate::train::{TrainConfig, TrainReport};
use ema_autodiff::{Grads, Tape};
use ema_data::{make_test_windows, make_windows, split_train_test, EmaGenerator, Individual, WindowedData};
use ema_graph::AdjacencyMatrix;
use ema_models::{
    A3tgcn, Astgcn, CohortBatch, CohortCtx, CohortForecaster, LstmForecaster, ModelKind, Mtgnn,
    WindowBatch,
};
use ema_nn::{global_grad_norm, Adam, Binding, Optimizer, OptimizerConfig};
use ema_obs::metrics::{EPOCH_BUCKETS, GRAD_NORM_BUCKETS, LOSS_BUCKETS};
use ema_obs::{point, span};
use ema_tensor::Rng64;

/// Which training path a sharded cohort run takes. Both paths are
/// bit-identical in results (enforced by `tests/determinism.rs`); they
/// differ only in tape-graph shape and throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CohortPath {
    /// One tape graph per shard of B individuals via
    /// [`CohortForecaster::predict_cohort`] — the hot path and the
    /// default for models that implement it (LSTM, A3TGCN, ASTGCN and
    /// MTGNN; see [`cohort_batch_supported`]; other models fall back to
    /// the per-individual path and emit a `cohort_fallback` obs point).
    #[default]
    Batched,
    /// One [`run_individual`] call per individual — the reference
    /// oracle, kept for equivalence testing and for models without a
    /// cohort forward.
    PerIndividual,
}

/// Trains `models[b]` on `windows[b]` under `configs[b]` for every `b`,
/// building one tape graph per epoch for the whole group. Bit-identical
/// to calling [`crate::train::train_model`] once per individual (with
/// the batched forward path), but with O(depth) tape nodes per epoch
/// for the whole cohort instead of per individual.
///
/// All configs must agree on the kernel backend (one thread-local pin
/// covers the shared graph).
///
/// A config with `warm_start` set restores the checkpoint into its
/// model before the first epoch; a warm-started config with
/// `epochs == 0` is a pure restore — the individual never joins the
/// active group and, per the cohort RNG contract, consumes zero
/// training draws (exactly as its standalone
/// [`crate::train::train_model`] run would).
///
/// # Panics
/// Panics on empty inputs, length mismatches, an empty window set,
/// zero epochs without a warm-start checkpoint, or disagreeing kernel
/// backends.
pub fn train_cohort<M: CohortForecaster>(
    models: &mut [M],
    windows: &[WindowedData],
    configs: &[TrainConfig],
) -> Vec<TrainReport> {
    let n = models.len();
    assert!(n > 0, "cannot train an empty cohort");
    assert_eq!(n, windows.len(), "one window set per model");
    assert_eq!(n, configs.len(), "one config per model");
    for (b, (w, c)) in windows.iter().zip(configs).enumerate() {
        assert!(!w.is_empty(), "individual {b}: cannot train on zero windows");
        assert!(
            c.epochs > 0 || c.warm_start.is_some(),
            "individual {b}: need at least one epoch (or a warm-start checkpoint)"
        );
        assert_eq!(
            c.kernel_backend, configs[0].kernel_backend,
            "individual {b}: cohort configs must share the kernel backend"
        );
    }
    let _kernel = configs[0].kernel_backend.scoped();
    let _span = span!("train_cohort", individuals = n);
    let obs = ema_obs::recorder();

    // Warm starts restore before the first epoch, exactly as
    // `train_model` does.
    for (model, config) in models.iter_mut().zip(configs) {
        if let Some(ckpt) = &config.warm_start {
            ckpt.restore(model.params_mut())
                .expect("warm-start checkpoint must match the model architecture");
        }
    }

    // The active group starts as every individual with a non-empty
    // schedule; 0-epoch warm-start restores are finalized immediately
    // with empty reports and never seed an RNG.
    let init_idx: Vec<usize> = (0..n).filter(|&i| configs[i].epochs > 0).collect();
    let mut reports: Vec<Option<TrainReport>> = (0..n)
        .map(|i| {
            (configs[i].epochs == 0).then(|| TrainReport {
                losses: Vec::new(),
                grad_norms: Vec::new(),
                epochs_run: 0,
                early_stopped: false,
            })
        })
        .collect();
    if init_idx.is_empty() {
        return reports.into_iter().map(|r| r.expect("all restores")).collect();
    }

    // Per-individual state: `losses`/`grad_norms`/`best`/… are indexed
    // by cohort position `i`; `rngs`/`adams` by *active* position and
    // compacted alongside `act_idx`.
    let batches: Vec<WindowBatch> =
        windows.iter().map(|w| WindowBatch::from_windows(&w.inputs)).collect();
    let mut adams: Vec<Adam> = init_idx
        .iter()
        .map(|&i| {
            Adam::new(OptimizerConfig {
                learning_rate: configs[i].learning_rate,
                grad_clip: configs[i].grad_clip,
                ..OptimizerConfig::default()
            })
        })
        .collect();
    let mut rngs: Vec<Rng64> =
        init_idx.iter().map(|&i| Rng64::seed_from(configs[i].seed)).collect();
    let mut losses: Vec<Vec<f64>> = configs.iter().map(|c| Vec::with_capacity(c.epochs)).collect();
    let mut grad_norms: Vec<Vec<f64>> =
        configs.iter().map(|c| Vec::with_capacity(c.epochs)).collect();
    let mut best = vec![f64::INFINITY; n];
    let mut since_best = vec![0usize; n];
    let mut early_stopped = vec![false; n];

    // One tape and one gradient workspace for the whole run; every
    // individual's target matrix is a persistent tape prefix.
    let mut tape = Tape::new();
    let mut grads = Grads::empty();
    let tgts: Vec<_> = windows.iter().map(|w| tape.leaf(w.targets_matrix())).collect();
    let keep = tape.len();

    // The active group: cohort positions still training, in stack
    // order. `rngs`/`adams` are compacted alongside so the forward sees
    // one contiguous RNG stream per *active* individual.
    let mut act_idx = init_idx;
    let mut cohort_batch =
        CohortBatch::from_batches(&act_idx.iter().map(|&i| &batches[i]).collect::<Vec<_>>());
    let mut epoch = 0usize;
    while !act_idx.is_empty() {
        tape.reset_to(keep);
        let bindings: Vec<Binding> =
            act_idx.iter().map(|&i| models[i].params().bind(&tape)).collect();
        let out = {
            let group: Vec<&M> = act_idx.iter().map(|&i| &models[i]).collect();
            let binding_refs: Vec<&Binding> = bindings.iter().collect();
            let mut ctx = CohortCtx::train(&mut rngs);
            M::predict_cohort(&group, &tape, &binding_refs, &cohort_batch, &mut ctx)
        };
        // Per-individual MSE over each row block, summed pairwise: the
        // add chain hands every loss node the seed gradient 1.0, so
        // individual b's backward matches its standalone graph.
        let mut loss_vars = Vec::with_capacity(act_idx.len());
        let mut total = None;
        for (pos, &i) in act_idx.iter().enumerate() {
            let off = cohort_batch.offset(pos);
            let wins = cohort_batch.group_wins()[pos];
            let pred = tape.slice_rows(out, off, off + wins);
            let l = tape.mse(pred, tgts[i]);
            loss_vars.push(l);
            total = Some(match total {
                None => l,
                Some(acc) => tape.add(acc, l),
            });
        }
        tape.backward_into(total.expect("non-empty active group"), &mut grads);

        let mut keep_mask = vec![true; act_idx.len()];
        let mut total_loss = 0.0;
        for (pos, &i) in act_idx.iter().enumerate() {
            let config = &configs[i];
            let loss_value = tape.value(loss_vars[pos]).data()[0];
            losses[i].push(loss_value);
            total_loss += loss_value;
            let grad_norm = global_grad_norm(models[i].params(), &bindings[pos], &grads);
            grad_norms[i].push(grad_norm);
            adams[pos].step(models[i].params_mut(), &bindings[pos], &grads);
            obs.observe("train_loss", &LOSS_BUCKETS, loss_value);

            // Early stopping and schedule end, exactly as train_model
            // decides them (the stopping epoch still takes its step).
            if config.early_stop_rel > 0.0 {
                if loss_value < best[i] * (1.0 - config.early_stop_rel) {
                    best[i] = loss_value;
                    since_best[i] = 0;
                } else {
                    since_best[i] += 1;
                    if since_best[i] >= config.patience {
                        early_stopped[i] = true;
                        keep_mask[pos] = false;
                        obs.inc_counter("early_stops", 1);
                    }
                }
            }
            if keep_mask[pos] && epoch + 1 >= config.epochs {
                keep_mask[pos] = false;
            }
        }
        point!(
            "cohort_epoch",
            epoch = epoch,
            active = act_idx.len(),
            loss_total = total_loss,
            tape_nodes = tape.len()
        );
        obs.set_gauge("tape_nodes", tape.len() as f64);
        epoch += 1;

        // Finalize reports for individuals leaving the group, then
        // compact the active-state vectors in lockstep and rebuild the
        // stacked batch without them.
        for (pos, &i) in act_idx.iter().enumerate() {
            if !keep_mask[pos] {
                let l = std::mem::take(&mut losses[i]);
                let g = std::mem::take(&mut grad_norms[i]);
                obs.observe("epochs_run", &EPOCH_BUCKETS, l.len() as f64);
                obs.observe("grad_norm_final", &GRAD_NORM_BUCKETS, *g.last().expect("ran"));
                reports[i] = Some(TrainReport {
                    epochs_run: l.len(),
                    early_stopped: early_stopped[i],
                    losses: l,
                    grad_norms: g,
                });
            }
        }
        if keep_mask.iter().any(|k| !k) {
            let old_idx = std::mem::take(&mut act_idx);
            let old_rngs = std::mem::take(&mut rngs);
            let old_adams = std::mem::take(&mut adams);
            for (((i, rng), adam), keep) in
                old_idx.into_iter().zip(old_rngs).zip(old_adams).zip(&keep_mask)
            {
                if *keep {
                    act_idx.push(i);
                    rngs.push(rng);
                    adams.push(adam);
                }
            }
            if !act_idx.is_empty() {
                let active_batches: Vec<&WindowBatch> =
                    act_idx.iter().map(|&i| &batches[i]).collect();
                cohort_batch = CohortBatch::from_batches(&active_batches);
            }
        }
    }
    ema_obs::drain_kernel_counters();
    reports.into_iter().map(|r| r.expect("every individual finalized")).collect()
}

/// True when [`run_cohort_batch`] has a cohort-batched forward for this
/// model kind. Everything that trains by gradient descent does (LSTM,
/// A3TGCN, ASTGCN, MTGNN); the closed-form VAR baseline does not.
#[must_use]
pub fn cohort_batch_supported(model: ModelKind) -> bool {
    !matches!(model, ModelKind::Var)
}

/// Runs one shard of individuals through the cohort-batched path:
/// per-individual split → graph → windows (as [`run_individual`] does),
/// then one [`train_cohort`] call for the whole shard, then
/// per-individual evaluation. Outcomes are bit-identical to
/// [`run_individual`] on each member.
///
/// # Panics
/// Panics when the spec's model has no cohort forward (see
/// [`cohort_batch_supported`]), or on the same data inconsistencies as
/// [`run_individual`].
#[must_use]
pub fn run_cohort_batch(individuals: &[Individual], spec: &RunSpec) -> Vec<IndividualOutcome> {
    run_cohort_batch_planned(individuals, spec, None)
}

/// [`run_cohort_batch`] with an optional cluster-warm-start plan: when
/// present, every individual is assigned to its nearest cluster from
/// the *training* split and fine-tuned from that cluster's checkpoint
/// (`epochs = fine_tune_epochs`, `warm_start` from the cache) instead
/// of training from scratch. [`run_cohort_sharded`] is the caller.
pub(crate) fn run_cohort_batch_planned(
    individuals: &[Individual],
    spec: &RunSpec,
    plan: Option<&ClusterPlan>,
) -> Vec<IndividualOutcome> {
    assert!(
        cohort_batch_supported(spec.model),
        "no cohort-batched forward for {}",
        spec.model.label()
    );
    match spec.model {
        ModelKind::Lstm => run_cohort_batch_as(individuals, spec, plan, |v, _graph| {
            LstmForecaster::new(v, &spec.model_config)
        }),
        ModelKind::A3tgcn => run_cohort_batch_as(individuals, spec, plan, |v, graph| {
            A3tgcn::with_options(
                v,
                graph.expect("A3TGCN requires a graph"),
                &spec.model_config,
                spec.use_attention,
            )
        }),
        ModelKind::Astgcn => run_cohort_batch_as(individuals, spec, plan, |v, graph| {
            Astgcn::with_options(
                v,
                spec.seq_len,
                graph.expect("ASTGCN requires a graph"),
                &spec.model_config,
                spec.use_spatial_attention,
            )
        }),
        ModelKind::Mtgnn => run_cohort_batch_as(individuals, spec, plan, |v, graph| {
            Mtgnn::with_learner(
                v,
                spec.seq_len,
                graph,
                &spec.model_config,
                spec.learn_graph,
                spec.graph_learner,
            )
        }),
        ModelKind::Var => unreachable!("gated by cohort_batch_supported"),
    }
}

/// The typed body of [`run_cohort_batch`]: `build` constructs each
/// individual's model exactly as [`run_individual`] would.
fn run_cohort_batch_as<M, F>(
    individuals: &[Individual],
    spec: &RunSpec,
    plan: Option<&ClusterPlan>,
    build: F,
) -> Vec<IndividualOutcome>
where
    M: CohortForecaster,
    F: Fn(usize, Option<&AdjacencyMatrix>) -> M,
{
    assert!(!individuals.is_empty(), "empty shard");
    let _kernel = spec.train_config.kernel_backend.scoped();
    let mut models = Vec::with_capacity(individuals.len());
    let mut train_windows = Vec::with_capacity(individuals.len());
    let mut configs = Vec::with_capacity(individuals.len());
    let mut test_windows = Vec::with_capacity(individuals.len());
    let mut graphs = Vec::with_capacity(individuals.len());
    for ind in individuals {
        let (train, test) = split_train_test(&ind.data, spec.train_fraction);
        let v = ind.data.dims()[1];
        // Graph built from training data only — recorded in the outcome
        // even for models (LSTM) that ignore it.
        let graph = match &spec.graph {
            GraphSpec::None => None,
            GraphSpec::Static { metric, gdt } => {
                Some(graph_for_individual(&train, *metric, *gdt))
            }
            GraphSpec::Provided(g) => Some(g.clone()),
        };
        models.push(build(v, graph.as_ref()));
        train_windows.push(make_windows(&train, spec.seq_len));
        test_windows.push(make_test_windows(&train, &test, spec.seq_len));
        let mut config = spec.train_config.clone();
        config.seed = ema_tensor::derive_stream_seed(spec.train_config.seed, ind.id as u64);
        if let Some(plan) = plan {
            // Cluster warm start: nearest medoid by training-split
            // series distance, fine-tune schedule from the plan.
            let cluster = plan.assign(&train);
            config.epochs = plan.fine_tune_epochs;
            config.warm_start = Some(plan.checkpoint(cluster));
        }
        configs.push(config);
        graphs.push(graph);
    }

    let reports = {
        let _train_span = span!("train", individuals = individuals.len());
        train_cohort(&mut models, &train_windows, &configs)
    };

    individuals
        .iter()
        .zip(&models)
        .zip(&test_windows)
        .zip(reports)
        .zip(graphs)
        .map(|((((ind, model), test), report), graph)| {
            let _eval_span = span!("evaluate", individual = ind.id, windows = test.len());
            // Extract the learned graph from MTGNN for Experiment C,
            // exactly as `run_individual` does.
            let learned_graph = if spec.model == ModelKind::Mtgnn && spec.learn_graph {
                let concrete = model
                    .as_any_mtgnn()
                    .expect("MTGNN model exposes its learned graph");
                Some(concrete.learned_graph())
            } else {
                None
            };
            if plan.is_some() {
                ema_obs::recorder().observe(
                    "cluster.fine_tune_epochs",
                    &EPOCH_BUCKETS,
                    report.epochs_run as f64,
                );
            }
            let outcome = IndividualOutcome {
                id: ind.id,
                mse: evaluate_mse(model, test),
                per_variable_mse: evaluate_per_variable_mse(model, test),
                // 0.0 stands in for "no training loss" on a 0-epoch
                // warm-start restore run (nomothetic serving).
                final_train_loss: report.final_loss_or(0.0),
                epochs_run: report.epochs_run,
                graph_used: graph,
                learned_graph,
            };
            ema_obs::drain_kernel_counters();
            outcome
        })
        .collect()
}

/// Streams a synthetic study through the executor in shards of
/// `shard_size` individuals. Each shard becomes one [`Job`] that
/// generates its slice of the study on the worker, runs it down the
/// spec's [`CohortPath`] (batched where [`cohort_batch_supported`],
/// per-individual otherwise — the fallback emits a `cohort_fallback`
/// obs point and bumps the `exec.cohort_fallbacks` counter),
/// and returns its outcomes; per-shard memory is dropped when the job
/// ends, and warm pool buffers are handed across jobs by the executor.
///
/// Results come back in individual order and are byte-identical at
/// every `(thread count, shard size)` pair and across both paths.
///
/// # Panics
/// Panics when `shard_size` is zero, or propagates the first shard
/// failure after the queue drains.
#[must_use]
pub fn run_cohort_sharded(
    generator: &EmaGenerator,
    spec: &RunSpec,
    shard_size: usize,
    executor: &Executor,
) -> Vec<IndividualOutcome> {
    assert!(shard_size > 0, "shard size must be positive");
    let n = generator.config().num_individuals;
    let _span = span!(
        "cohort_sharded",
        model = spec.model.label(),
        graph = spec.graph.label(),
        individuals = n,
        shard_size = shard_size,
        threads = executor.threads()
    );
    let batched = spec.cohort_path == CohortPath::Batched && cohort_batch_supported(spec.model);
    if spec.cohort_path == CohortPath::Batched && !batched {
        // The hot path was requested but this model has no cohort
        // forward: make the silent downgrade visible.
        point!("cohort_fallback", model = spec.model.label());
        ema_obs::recorder().inc_counter("exec.cohort_fallbacks", 1);
    }
    // Cluster phase (when the strategy asks for it) runs once on the
    // calling thread before any shard job is spawned, so the plan — and
    // through it every result — is identical at every thread count.
    let plan = match &spec.train_strategy {
        TrainStrategy::Idiographic => None,
        TrainStrategy::ClusterWarmStart { .. } => Some(plan_clusters(generator, spec)),
    };
    let plan = plan.as_ref();
    let jobs: Vec<Job<'_, Vec<IndividualOutcome>>> = (0..n)
        .step_by(shard_size)
        .map(|start| {
            let end = (start + shard_size).min(n);
            Job::new(format!("shard_{start}_{end}"), move || {
                let _shard_span = span!("shard", start = start, individuals = end - start);
                let recorder = ema_obs::recorder();
                recorder.inc_counter("exec.shard_batches", 1);
                recorder.inc_counter("exec.shard_individuals", (end - start) as u64);
                let individuals = generator.generate_range(start, end);
                if batched {
                    run_cohort_batch_planned(&individuals, spec, plan)
                } else {
                    individuals
                        .iter()
                        .map(|ind| match plan {
                            None => run_individual(ind.id, &ind.data, spec),
                            Some(plan) => plan.run_individual_warm(ind.id, &ind.data, spec),
                        })
                        .collect()
                }
            })
        })
        .collect();
    expect_all(executor.run(jobs), "sharded cohort").into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train_model;
    use ema_data::GeneratorConfig;
    use ema_models::{Forecaster, ModelConfig};

    fn quick_spec() -> RunSpec {
        RunSpec {
            model_config: ModelConfig::tiny(0),
            train_config: TrainConfig::quick(12, 3),
            ..RunSpec::new(ModelKind::Lstm, GraphSpec::None, 2)
        }
    }

    fn generator() -> EmaGenerator {
        EmaGenerator::new(GeneratorConfig::quick(5, 4, 17))
    }

    /// The whole point: one cohort tape graph must reproduce B separate
    /// `train_model` runs bit for bit — losses, gradient norms, epoch
    /// counts, and the trained parameters.
    #[test]
    fn train_cohort_matches_per_individual_train_model() {
        let ds = generator().generate();
        let spec = quick_spec();
        let prep = |ind: &Individual| {
            let (train, _) = split_train_test(&ind.data, spec.train_fraction);
            let mut config = spec.train_config.clone();
            config.seed = ema_tensor::derive_stream_seed(spec.train_config.seed, ind.id as u64);
            (make_windows(&train, spec.seq_len), config)
        };
        let mut models: Vec<LstmForecaster> = ds
            .individuals
            .iter()
            .map(|ind| LstmForecaster::new(ind.data.dims()[1], &spec.model_config))
            .collect();
        let (windows, configs): (Vec<_>, Vec<_>) =
            ds.individuals.iter().map(prep).unzip();
        let reports = train_cohort(&mut models, &windows, &configs);

        for (b, ind) in ds.individuals.iter().enumerate() {
            let mut reference = LstmForecaster::new(ind.data.dims()[1], &spec.model_config);
            let r = train_model(&mut reference, &windows[b], &configs[b]);
            assert_eq!(reports[b].losses, r.losses, "individual {b} losses");
            assert_eq!(reports[b].grad_norms, r.grad_norms, "individual {b} grad norms");
            assert_eq!(reports[b].epochs_run, r.epochs_run, "individual {b} epochs");
            assert_eq!(reports[b].early_stopped, r.early_stopped);
            for id in reference.params().ids() {
                assert_eq!(
                    models[b].params().value(id).data(),
                    reference.params().value(id).data(),
                    "individual {b} param {} diverged",
                    reference.params().name(id)
                );
            }
        }
    }

    #[test]
    fn sharded_outcomes_match_oracle_at_any_shard_size_and_thread_count() {
        let generator = generator();
        let spec = quick_spec();
        let oracle_spec = RunSpec { cohort_path: CohortPath::PerIndividual, ..spec.clone() };
        let key = |outcomes: &[IndividualOutcome]| -> Vec<(usize, f64, f64, usize)> {
            outcomes
                .iter()
                .map(|o| (o.id, o.mse, o.final_train_loss, o.epochs_run))
                .collect()
        };
        let oracle = run_cohort_sharded(&generator, &oracle_spec, 1, &Executor::sequential());
        assert_eq!(oracle.len(), 5);
        for (shard_size, threads) in [(1, 1), (2, 2), (3, 4), (5, 1)] {
            let got = run_cohort_sharded(
                &generator,
                &spec,
                shard_size,
                &Executor::with_threads(threads),
            );
            assert_eq!(key(&got), key(&oracle), "shard_size={shard_size} threads={threads}");
        }
    }

    #[test]
    fn early_stopping_individuals_leave_the_active_group() {
        let ds = generator().generate();
        let spec = quick_spec();
        let mut configs: Vec<TrainConfig> = Vec::new();
        let mut models = Vec::new();
        let mut windows = Vec::new();
        for (b, ind) in ds.individuals.iter().enumerate() {
            let (train, _) = split_train_test(&ind.data, spec.train_fraction);
            let mut config = spec.train_config.clone();
            config.seed = ema_tensor::derive_stream_seed(config.seed, ind.id as u64);
            // Stagger schedules so the group shrinks mid-run.
            config.epochs = 4 + 3 * b;
            config.early_stop_rel = 0.0;
            models.push(LstmForecaster::new(ind.data.dims()[1], &spec.model_config));
            windows.push(make_windows(&train, spec.seq_len));
            configs.push(config);
        }
        let reports = train_cohort(&mut models, &windows, &configs);
        for (b, report) in reports.iter().enumerate() {
            assert_eq!(report.epochs_run, 4 + 3 * b, "individual {b}");
            assert!(!report.early_stopped);
        }
    }

    #[test]
    #[should_panic(expected = "no cohort-batched forward")]
    fn run_cohort_batch_rejects_var() {
        let ds = generator().generate();
        let spec = RunSpec {
            model_config: ModelConfig::tiny(0),
            ..RunSpec::new(ModelKind::Var, GraphSpec::None, 2)
        };
        let _ = run_cohort_batch(&ds.individuals[..1], &spec);
    }

    /// Every graph model's cohort-batched shard must reproduce
    /// `run_individual` on each member bit for bit — MSEs, losses,
    /// epoch counts, and MTGNN's learned graph.
    #[test]
    fn graph_model_cohort_batch_matches_run_individual() {
        let ds = generator().generate();
        for model in [ModelKind::A3tgcn, ModelKind::Astgcn, ModelKind::Mtgnn] {
            let spec = RunSpec {
                model_config: ModelConfig::tiny(0),
                train_config: TrainConfig::quick(6, 3),
                ..RunSpec::new(
                    model,
                    GraphSpec::Static {
                        metric: ema_similarity::GraphMetric::Correlation,
                        gdt: ema_graph::sparsify::DensityThreshold::Gdt40,
                    },
                    2,
                )
            };
            let got = run_cohort_batch(&ds.individuals, &spec);
            for (o, ind) in got.iter().zip(&ds.individuals) {
                let want = run_individual(ind.id, &ind.data, &spec);
                assert_eq!(o.mse, want.mse, "{model:?} individual {} mse", ind.id);
                assert_eq!(
                    o.per_variable_mse, want.per_variable_mse,
                    "{model:?} individual {} per-variable mse",
                    ind.id
                );
                assert_eq!(
                    o.final_train_loss, want.final_train_loss,
                    "{model:?} individual {} final loss",
                    ind.id
                );
                assert_eq!(o.epochs_run, want.epochs_run, "{model:?} individual {}", ind.id);
                assert_eq!(
                    o.learned_graph.as_ref().map(|g| g.weights().data().to_vec()),
                    want.learned_graph.as_ref().map(|g| g.weights().data().to_vec()),
                    "{model:?} individual {} learned graph",
                    ind.id
                );
            }
        }
    }
}
