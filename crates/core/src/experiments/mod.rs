//! The paper's experiments: Table I (scenario grid), Experiment A
//! (Table II), Experiment B (Table III), Experiment C (Fig. 3) and
//! design-choice ablations.

mod ablation;
mod cluster_compare;
mod exp_a;
mod exp_b;
mod exp_c;
mod extensions;
mod hyperparams;

pub use ablation::run_ablation;
pub use cluster_compare::{
    run_cluster_compare, run_cluster_compare_with, strategies, STRATEGY_COLUMNS,
};
pub use exp_a::run_experiment_a;
pub use exp_b::run_experiment_b;
pub use exp_c::{run_experiment_c, Fig3Entry, Fig3Results};
pub use extensions::{run_per_variable, run_seq_sweep, SWEEP_SEQ_LENS};
pub use hyperparams::{run_hyperparameter_sweep, HIDDEN_UNITS, LEARNING_RATES};

use crate::pipeline::{GraphSpec, RunSpec};
use crate::train::TrainConfig;
use ema_data::{EmaDataset, EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_models::{ModelConfig, ModelKind};
use ema_similarity::GraphMetric;

/// How large an experiment run is. The paper's setting is
/// [`ExperimentScale::full`]; the reduced presets preserve orderings
/// while running in minutes (documented in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Number of individuals N.
    pub num_individuals: usize,
    /// Number of variables V.
    pub num_variables: usize,
    /// Mean time points per individual.
    pub mean_time_points: usize,
    /// Training epochs per individual.
    pub epochs: usize,
    /// Random graphs averaged for the RAND condition (paper: 5).
    pub random_repeats: usize,
    /// Dataset seed.
    pub data_seed: u64,
    /// Model width (paper: 32; reduced presets shrink it).
    pub hidden: usize,
}

impl ExperimentScale {
    /// Smoke-test scale: seconds per table.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            num_individuals: 2,
            num_variables: 6,
            mean_time_points: 60,
            epochs: 8,
            random_repeats: 1,
            data_seed: 2024,
            hidden: 8,
        }
    }

    /// Default bench scale: minutes per table, orderings stable.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            num_individuals: 8,
            num_variables: 12,
            mean_time_points: 110,
            epochs: 60,
            random_repeats: 2,
            data_seed: 2024,
            hidden: 16,
        }
    }

    /// Paper scale: N=100, V=26, 300 epochs. Hours of CPU time.
    #[must_use]
    pub fn full() -> Self {
        Self {
            num_individuals: 100,
            num_variables: 26,
            mean_time_points: 140,
            epochs: 300,
            random_repeats: 5,
            data_seed: 2024,
            hidden: 32,
        }
    }

    /// Generates the synthetic study for this scale.
    #[must_use]
    pub fn dataset(&self) -> EmaDataset {
        EmaGenerator::new(GeneratorConfig {
            num_individuals: self.num_individuals,
            num_variables: self.num_variables,
            mean_time_points: self.mean_time_points,
            seed: self.data_seed,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    /// The shared model configuration at this scale.
    #[must_use]
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig {
            hidden: self.hidden,
            attn_dim: (self.hidden / 2).max(4),
            embed_dim: (self.num_variables / 2).clamp(4, 10),
            graph_top_k: (self.num_variables / 3).clamp(2, 8),
            ..ModelConfig::default()
        }
    }

    /// The training configuration at this scale.
    #[must_use]
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            ..TrainConfig::default()
        }
    }

    /// A full [`RunSpec`] for one condition.
    #[must_use]
    pub fn spec(&self, model: ModelKind, graph: GraphSpec, seq_len: usize) -> RunSpec {
        RunSpec {
            model,
            graph,
            seq_len,
            train_fraction: 0.7,
            model_config: self.model_config(),
            train_config: self.train_config(),
            learn_graph: true,
            graph_learner: ema_models::GraphLearnerKind::Embedding,
            use_attention: true,
            use_spatial_attention: true,
            cohort_path: crate::cohort::CohortPath::default(),
            train_strategy: crate::cluster::TrainStrategy::default(),
        }
    }

    /// The cluster count K for the cluster-warm-start strategy at this
    /// scale: roughly one cluster per four individuals, at least 2.
    #[must_use]
    pub fn cluster_k(&self) -> usize {
        (self.num_individuals / 4).clamp(2, 8).min(self.num_individuals)
    }

    /// The kNN `k` used for the kNN metric at this scale (the paper's
    /// "k connections per node"; k = 5 at V = 26).
    #[must_use]
    pub fn knn_k(&self) -> usize {
        (self.num_variables / 5).clamp(2, 5)
    }

    /// The paper's four static metrics at this scale.
    #[must_use]
    pub fn static_metrics(&self) -> [GraphMetric; 4] {
        [
            GraphMetric::Euclidean,
            GraphMetric::Knn(self.knn_k()),
            GraphMetric::Dtw,
            GraphMetric::Correlation,
        ]
    }
}

/// One row of Table I: the examined scenario space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// GNN model.
    pub model: ModelKind,
    /// Graph structure label (Table I column 2).
    pub graph: &'static str,
    /// Sparsity level.
    pub gdt: DensityThreshold,
}

/// Enumerates Table I: 3 GNN models × 6 graph structures × 3 sparsity
/// levels.
#[must_use]
pub fn scenario_grid() -> Vec<Scenario> {
    let graphs = ["Euclidean", "kNN", "DTW", "Correlation", "GNN-learned", "Random"];
    let mut out = Vec::new();
    for model in ModelKind::gnns() {
        for graph in graphs {
            for gdt in DensityThreshold::all() {
                out.push(Scenario { model, graph, gdt });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_grid_matches_table1() {
        let grid = scenario_grid();
        // 3 models × 6 graph structures × 3 GDT levels.
        assert_eq!(grid.len(), 3 * 6 * 3);
        assert!(grid
            .iter()
            .any(|s| s.model == ModelKind::Mtgnn && s.graph == "GNN-learned"));
    }

    #[test]
    fn scales_are_ordered() {
        let t = ExperimentScale::tiny();
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        assert!(t.num_individuals < q.num_individuals);
        assert!(q.num_individuals < f.num_individuals);
        assert_eq!(f.num_individuals, 100);
        assert_eq!(f.num_variables, 26);
        assert_eq!(f.epochs, 300);
        assert_eq!(f.hidden, 32);
    }

    #[test]
    fn dataset_generation_respects_scale() {
        let s = ExperimentScale::tiny();
        let ds = s.dataset();
        assert_eq!(ds.num_individuals(), 2);
        assert_eq!(ds.num_variables(), 6);
    }

    #[test]
    fn knn_k_is_sane() {
        assert_eq!(ExperimentScale::full().knn_k(), 5);
        assert!(ExperimentScale::tiny().knn_k() >= 2);
    }
}
