//! Cluster-then-personalize comparison: idiographic vs K-medoids
//! cluster warm-start vs nomothetic training, per model.
//!
//! Complements the paper's experiments with the training-strategy axis
//! from the authors' companion clustering work: does fine-tuning from
//! a cluster model preserve idiographic accuracy at a fraction of the
//! training cost? Rows are the four models, columns the three
//! strategies, cells `mean(std)` test MSE across individuals (streamed
//! through [`run_cohort_sharded`], so every arm exercises the exact
//! production path).

use super::ExperimentScale;
use crate::cluster::TrainStrategy;
use crate::cohort::run_cohort_sharded;
use crate::exec::Executor;
use crate::pipeline::GraphSpec;
use crate::results::{CellStat, ResultTable};
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_obs::span;
use ema_similarity::GraphMetric;

/// The strategy columns of the comparison table.
pub const STRATEGY_COLUMNS: [&str; 3] = ["Idiographic", "Cluster", "Nomothetic"];

/// Input window length used for every arm (the paper's multi-step
/// setting).
const SEQ_LEN: usize = 5;

/// Shard size for the streamed cohort runs.
const SHARD_SIZE: usize = 8;

/// The three training strategies at a given scale: the paper's
/// idiographic default, cluster-then-personalize (K from
/// [`ExperimentScale::cluster_k`], fine-tuning a quarter of the epoch
/// budget), and the nomothetic baseline (one shared model, `k = 1`,
/// no fine-tuning).
#[must_use]
pub fn strategies(scale: &ExperimentScale) -> [(&'static str, TrainStrategy); 3] {
    [
        ("Idiographic", TrainStrategy::Idiographic),
        (
            "Cluster",
            TrainStrategy::ClusterWarmStart {
                k: scale.cluster_k(),
                cluster_epochs: scale.epochs,
                fine_tune_epochs: (scale.epochs / 4).max(1),
            },
        ),
        (
            "Nomothetic",
            TrainStrategy::ClusterWarmStart {
                k: 1,
                cluster_epochs: scale.epochs,
                fine_tune_epochs: 0,
            },
        ),
    ]
}

/// Runs the comparison on the executor sized by `--threads` /
/// `EMA_THREADS`.
#[must_use]
pub fn run_cluster_compare(scale: &ExperimentScale) -> ResultTable {
    run_cluster_compare_with(scale, &Executor::from_env())
}

/// Runs the comparison on an explicit executor. Rows are
/// [`ModelKind::all`] (LSTM graph-free, GNNs on the correlation graph
/// at GDT 40%), columns [`STRATEGY_COLUMNS`].
#[must_use]
pub fn run_cluster_compare_with(scale: &ExperimentScale, exec: &Executor) -> ResultTable {
    let _exp_span = span!("experiment", name = "cluster_compare");
    let generator = EmaGenerator::new(GeneratorConfig {
        num_individuals: scale.num_individuals,
        num_variables: scale.num_variables,
        mean_time_points: scale.mean_time_points,
        seed: scale.data_seed,
        ..GeneratorConfig::default()
    });
    let mut table = ResultTable::new(
        "Cluster-then-personalize: idiographic vs cluster warm-start vs nomothetic \
         (test MSE, CORR graph @ GDT 40%)",
        STRATEGY_COLUMNS.iter().map(ToString::to_string).collect(),
    );

    for model in ModelKind::all() {
        let _row_span = span!("condition", row = model.label());
        let graph = if model.uses_graph() {
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt40,
            }
        } else {
            GraphSpec::None
        };
        let cells: Vec<CellStat> = strategies(scale)
            .into_iter()
            .map(|(name, strategy)| {
                let _arm_span = span!("strategy", name = name);
                let mut spec = scale.spec(model, graph.clone(), SEQ_LEN);
                spec.train_strategy = strategy;
                let outcomes = run_cohort_sharded(&generator, &spec, SHARD_SIZE, exec);
                CellStat::from_samples(&outcomes.iter().map(|o| o.mse).collect::<Vec<_>>())
            })
            .collect();
        table.push_row(model.label(), cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_compare_structure_and_determinism() {
        let mut scale = ExperimentScale::tiny();
        scale.epochs = 3;
        scale.num_individuals = 4;
        let sequential = run_cluster_compare_with(&scale, &Executor::sequential());
        assert_eq!(sequential.columns, STRATEGY_COLUMNS.to_vec());
        assert_eq!(sequential.rows.len(), 4);
        for (label, cells) in &sequential.rows {
            for c in cells {
                assert!(c.mean.is_finite() && c.mean > 0.0, "bad cell in {label}");
            }
        }
        // Byte-identical across thread counts: the cluster plan is
        // built on the caller thread, shards only fine-tune.
        let threaded = run_cluster_compare_with(&scale, &Executor::with_threads(4));
        assert_eq!(sequential.to_json(), threaded.to_json());
    }
}
