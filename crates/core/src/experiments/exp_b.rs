//! Experiment B — Table III: the effect of graph construction metric
//! and density threshold (Seq5 input).

use super::ExperimentScale;
use crate::pipeline::{run_cohort, GraphSpec};
use crate::results::{CellStat, ResultTable};
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_obs::span;
use ema_similarity::GraphMetric;

/// The input length used throughout Experiment B (the paper observed
/// identical trends for single- and multi-step, so only Seq5 is shown).
pub const SEQ_LEN: usize = 5;

/// Runs Experiment B and returns Table III: rows are
/// `{A3TGCN, ASTGCN, MTGNN} × {EUC, DTW, kNN, CORR, RAND}`, columns
/// `GDT = 20%, 40%, 100%`. The RAND condition averages
/// `scale.random_repeats` independently drawn graphs, as in the paper
/// ("the average score after using 5 randomly generated in training").
#[must_use]
pub fn run_experiment_b(scale: &ExperimentScale) -> ResultTable {
    let _exp_span = span!("experiment", name = "exp_b_table3");
    let dataset = scale.dataset();
    let columns: Vec<String> = DensityThreshold::all()
        .iter()
        .map(|g| format!("GDT = {}", g.label()))
        .collect();
    let mut table = ResultTable::new(
        "Table III: average MSE for different levels of graph sparsity (Seq5)",
        columns,
    );

    for metric in scale.static_metrics() {
        for model in ModelKind::gnns() {
            let row = format!("{}_{}", model.label(), metric.label());
            let _row_span = span!("condition", row = row.as_str());
            let cells: Vec<CellStat> = DensityThreshold::all()
                .iter()
                .map(|&gdt| {
                    let spec = scale.spec(model, GraphSpec::Static { metric, gdt }, SEQ_LEN);
                    let outcomes = run_cohort(&dataset, &spec);
                    CellStat::from_samples(
                        &outcomes.iter().map(|o| o.mse).collect::<Vec<_>>(),
                    )
                })
                .collect();
            table.push_row(row, cells);
        }
    }

    // RAND control: averaged over independently seeded random graphs.
    for model in ModelKind::gnns() {
        let row = format!("{}_RAND", model.label());
        let _row_span = span!("condition", row = row.as_str());
        let cells: Vec<CellStat> = DensityThreshold::all()
            .iter()
            .map(|&gdt| {
                let mut samples = Vec::new();
                for rep in 0..scale.random_repeats {
                    // Stream-derived repeat seeds: a pure function of
                    // (data seed, repeat), independent of loop order.
                    let metric = GraphMetric::Random(ema_tensor::derive_stream_seed(
                        scale.data_seed,
                        rep as u64 + 1,
                    ));
                    let spec = scale.spec(model, GraphSpec::Static { metric, gdt }, SEQ_LEN);
                    let outcomes = run_cohort(&dataset, &spec);
                    samples.extend(outcomes.iter().map(|o| o.mse));
                }
                CellStat::from_samples(&samples)
            })
            .collect();
        table.push_row(row, cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_structure() {
        let mut scale = ExperimentScale::tiny();
        scale.epochs = 2;
        scale.num_individuals = 2;
        scale.random_repeats = 1;
        let table = run_experiment_b(&scale);
        // 4 metrics × 3 models + 3 RAND rows.
        assert_eq!(table.rows.len(), 15);
        assert_eq!(table.columns.len(), 3);
        assert!(table.cell("MTGNN_RAND", "GDT = 100%").is_some());
        assert!(table.cell("ASTGCN_DTW", "GDT = 20%").is_some());
    }
}
