//! Experiment C — Fig. 3: static vs MTGNN-learned graph structures.
//!
//! For every static metric, MTGNN is trained with that graph as its
//! initial structure; the learned graph is extracted per individual and
//! fed to A3TGCN and ASTGCN. The figure's boxplots become five-number
//! summaries; its red percentage annotations become
//! [`Fig3Entry::pct_change`].

use super::ExperimentScale;
use crate::exec::{expect_all, Executor, Job};
use crate::json::{Json, JsonError};
use crate::pipeline::{run_cohort, GraphSpec, RunSpec};
use crate::results::{mean_relative_change_percent, BoxplotStats};
use ema_graph::sparsify::DensityThreshold;
use ema_graph::stats::edge_weight_correlation;
use ema_models::ModelKind;
use ema_obs::span;

/// Input length used in Experiment C (sparse graphs, Seq5 — Sec. VI-C).
pub const SEQ_LEN: usize = 5;

/// One (model, metric) comparison of Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig3Entry {
    /// Model name (`A3TGCN`, `ASTGCN` or `MTGNN`).
    pub model: String,
    /// Static metric label (`EUC`, `kNN`, `DTW`, `CORR`).
    pub metric: String,
    /// Distribution of per-individual MSEs with the static graph.
    pub static_stats: BoxplotStats,
    /// Distribution with the MTGNN-learned graph.
    pub learned_stats: BoxplotStats,
    /// Mean per-individual relative MSE change in percent (negative =
    /// the learned graph improves the model; the red numbers in Fig. 3).
    pub pct_change: f64,
}

impl Fig3Entry {
    /// JSON encoding mirroring the struct's fields.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("model", Json::Str(self.model.clone())),
            ("metric", Json::Str(self.metric.clone())),
            ("static_stats", self.static_stats.to_json_value()),
            ("learned_stats", self.learned_stats.to_json_value()),
            ("pct_change", Json::Num(self.pct_change)),
        ])
    }

    /// Decodes the [`Self::to_json_value`] encoding.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on a missing member or wrong type.
    pub fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            model: v.require("model")?.to_str()?.to_string(),
            metric: v.require("metric")?.to_str()?.to_string(),
            static_stats: BoxplotStats::from_json_value(v.require("static_stats")?)?,
            learned_stats: BoxplotStats::from_json_value(v.require("learned_stats")?)?,
            pct_change: v.require("pct_change")?.to_f64()?,
        })
    }
}

/// The complete Fig. 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3Results {
    /// All (model, metric) comparisons.
    pub entries: Vec<Fig3Entry>,
    /// Mean edge-weight correlation between learned and static graphs
    /// (the paper reports ≈88% for ASTGCN's case).
    pub mean_graph_correlation: f64,
}

impl Fig3Results {
    /// Renders the figure as text: one block per model × metric.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fig. 3: MSE distributions, static vs MTGNN-learned graphs (Seq5, GDT = 20%)\n",
        );
        out.push_str(&format!(
            "mean learned-vs-static graph correlation: {:.1}%\n\n",
            100.0 * self.mean_graph_correlation
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{} / {}  (Δ {:+.1}%)\n  static : {}\n  learned: {}\n",
                e.model, e.metric, e.pct_change, e.static_stats, e.learned_stats
            ));
        }
        out
    }

    /// Serialises to JSON for EXPERIMENTS.md bookkeeping.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            (
                "entries",
                Json::Arr(self.entries.iter().map(Fig3Entry::to_json_value).collect()),
            ),
            (
                "mean_graph_correlation",
                Json::Num(self.mean_graph_correlation),
            ),
        ])
        .pretty()
    }

    /// Parses the [`Self::to_json`] encoding.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on malformed JSON or a wrong shape.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let v = Json::parse(json)?;
        Ok(Self {
            entries: v
                .require("entries")?
                .to_arr()?
                .iter()
                .map(Fig3Entry::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
            mean_graph_correlation: v.require("mean_graph_correlation")?.to_f64()?,
        })
    }
}

/// Runs Experiment C.
#[must_use]
pub fn run_experiment_c(scale: &ExperimentScale) -> Fig3Results {
    let _exp_span = span!("experiment", name = "exp_c_fig3");
    let dataset = scale.dataset();
    let gdt = DensityThreshold::Gdt20;
    let mut entries = Vec::new();
    let mut graph_correlations = Vec::new();

    for metric in scale.static_metrics() {
        let _metric_span = span!("condition", metric = metric.label());
        // 1. MTGNN primed with this static graph; collect its MSEs and
        //    per-individual learned graphs.
        let mtgnn_spec = scale.spec(ModelKind::Mtgnn, GraphSpec::Static { metric, gdt }, SEQ_LEN);
        let mtgnn_outcomes = run_cohort(&dataset, &mtgnn_spec);
        let mtgnn_mses: Vec<f64> = mtgnn_outcomes.iter().map(|o| o.mse).collect();

        for outcome in &mtgnn_outcomes {
            if let (Some(learned), Some(static_g)) =
                (&outcome.learned_graph, &outcome.graph_used)
            {
                graph_correlations.push(edge_weight_correlation(learned, static_g));
            }
        }

        // MTGNN entry: "learned" is its own trained result; "static" is
        // the graph-learning-disabled ablation run.
        let mtgnn_static_spec = RunSpec {
            learn_graph: false,
            ..scale.spec(ModelKind::Mtgnn, GraphSpec::Static { metric, gdt }, SEQ_LEN)
        };
        let mtgnn_static: Vec<f64> = run_cohort(&dataset, &mtgnn_static_spec)
            .iter()
            .map(|o| o.mse)
            .collect();
        entries.push(Fig3Entry {
            model: "MTGNN".into(),
            metric: metric.label().into(),
            static_stats: BoxplotStats::from_samples(&mtgnn_static),
            learned_stats: BoxplotStats::from_samples(&mtgnn_mses),
            pct_change: mean_relative_change_percent(&mtgnn_static, &mtgnn_mses),
        });

        // 2. A3TGCN / ASTGCN with the static graph vs the per-individual
        //    MTGNN-learned graph.
        for model in [ModelKind::A3tgcn, ModelKind::Astgcn] {
            let static_spec = scale.spec(model, GraphSpec::Static { metric, gdt }, SEQ_LEN);
            let static_mses: Vec<f64> = run_cohort(&dataset, &static_spec)
                .iter()
                .map(|o| o.mse)
                .collect();

            // Learned condition: each individual gets its own learned
            // graph, so each (individual, graph) pair is one executor
            // job rather than a hand-rolled loop.
            let jobs: Vec<Job<'_, f64>> = dataset
                .individuals
                .iter()
                .zip(mtgnn_outcomes.iter())
                .map(|(ind, outcome)| {
                    let learned = outcome
                        .learned_graph
                        .clone()
                        .expect("MTGNN produces learned graphs");
                    let spec = scale.spec(model, GraphSpec::Provided(learned), SEQ_LEN);
                    Job::new(format!("learned_individual_{}", ind.id), move || {
                        crate::pipeline::run_individual(ind.id, &ind.data, &spec).mse
                    })
                })
                .collect();
            let learned_mses =
                expect_all(Executor::from_env().run(jobs), "exp_c learned condition");

            entries.push(Fig3Entry {
                model: model.label().into(),
                metric: metric.label().into(),
                static_stats: BoxplotStats::from_samples(&static_mses),
                learned_stats: BoxplotStats::from_samples(&learned_mses),
                pct_change: mean_relative_change_percent(&static_mses, &learned_mses),
            });
        }
    }

    let mean_graph_correlation = if graph_correlations.is_empty() {
        0.0
    } else {
        graph_correlations.iter().sum::<f64>() / graph_correlations.len() as f64
    };

    Fig3Results {
        entries,
        mean_graph_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_structure() {
        let mut scale = ExperimentScale::tiny();
        scale.epochs = 2;
        scale.num_individuals = 2;
        let fig = run_experiment_c(&scale);
        // 4 metrics × 3 models.
        assert_eq!(fig.entries.len(), 12);
        for e in &fig.entries {
            assert!(e.static_stats.mean.is_finite());
            assert!(e.learned_stats.mean.is_finite());
            assert!(e.pct_change.is_finite());
        }
        let rendered = fig.render();
        assert!(rendered.contains("MTGNN / EUC") || rendered.contains("MTGNN / CORR"));
        // JSON round trip.
        let parsed = Fig3Results::from_json(&fig.to_json()).unwrap();
        assert_eq!(parsed.entries.len(), 12);
    }
}
