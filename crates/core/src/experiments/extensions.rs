//! Future-work extensions the paper explicitly calls for:
//! a systematic input-length sweep and per-variable error analysis.

use super::ExperimentScale;
use crate::pipeline::{run_cohort, GraphSpec};
use crate::results::{CellStat, ResultTable};
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_similarity::GraphMetric;

/// Input lengths covered by the sweep (the paper tests only 1/2/5 and
/// notes "more experiments should be conducted on the most appropriate
/// length of the input data sequence").
pub const SWEEP_SEQ_LENS: [usize; 6] = [1, 2, 3, 5, 7, 10];

/// Sweeps the input window length for the LSTM baseline and the best
/// GNN (MTGNN with a CORR prior), columns = window lengths.
#[must_use]
pub fn run_seq_sweep(scale: &ExperimentScale) -> ResultTable {
    let dataset = scale.dataset();
    let columns: Vec<String> = SWEEP_SEQ_LENS.iter().map(|s| format!("Seq{s}")).collect();
    let mut table = ResultTable::new(
        "Input-length sweep (future work): MSE vs window length",
        columns,
    );
    let conditions = [
        ("LSTM", ModelKind::Lstm, GraphSpec::None),
        (
            "MTGNN_CORR",
            ModelKind::Mtgnn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
        ),
        (
            "ASTGCN_CORR",
            ModelKind::Astgcn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
        ),
    ];
    for (label, model, graph) in conditions {
        let cells: Vec<CellStat> = SWEEP_SEQ_LENS
            .iter()
            .map(|&seq| {
                let spec = scale.spec(model, graph.clone(), seq);
                let outcomes = run_cohort(&dataset, &spec);
                CellStat::from_samples(&outcomes.iter().map(|o| o.mse).collect::<Vec<_>>())
            })
            .collect();
        table.push_row(label, cells);
    }
    table
}

/// Per-variable test MSE for MTGNN (CORR prior, Seq5), aggregated across
/// individuals — the paper's future-work item on "the effects across
/// the MSE scores when predicting each of the variables".
#[must_use]
pub fn run_per_variable(scale: &ExperimentScale) -> ResultTable {
    let dataset = scale.dataset();
    let spec = scale.spec(
        ModelKind::Mtgnn,
        GraphSpec::Static {
            metric: GraphMetric::Correlation,
            gdt: DensityThreshold::Gdt20,
        },
        5,
    );
    let outcomes = run_cohort(&dataset, &spec);
    let v = dataset.num_variables();
    let mut table = ResultTable::new(
        "Per-variable MSE, MTGNN_CORR at Seq5 (future work)",
        vec!["MSE".into()],
    );
    for j in 0..v {
        let samples: Vec<f64> = outcomes.iter().map(|o| o.per_variable_mse[j]).collect();
        table.push_row(
            dataset.variable_names[j].clone(),
            vec![CellStat::from_samples(&samples)],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_scale() -> ExperimentScale {
        let mut s = ExperimentScale::tiny();
        s.epochs = 2;
        s.num_individuals = 2;
        s
    }

    #[test]
    fn seq_sweep_structure() {
        let table = run_seq_sweep(&micro_scale());
        assert_eq!(table.columns.len(), SWEEP_SEQ_LENS.len());
        assert_eq!(table.rows.len(), 3);
        assert!(table.cell("MTGNN_CORR", "Seq10").is_some());
    }

    #[test]
    fn per_variable_covers_all_variables() {
        let scale = micro_scale();
        let table = run_per_variable(&scale);
        assert_eq!(table.rows.len(), scale.num_variables);
        assert!(table.cell("cheerful", "MSE").is_some());
        for (label, cells) in &table.rows {
            assert!(cells[0].mean.is_finite(), "bad cell for {label}");
        }
    }
}
