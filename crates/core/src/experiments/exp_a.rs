//! Experiment A — Table II: GNN models vs the LSTM baseline across
//! input sequence lengths (GDT fixed at 20%).

use super::ExperimentScale;
use crate::pipeline::{run_cohort, GraphSpec};
use crate::results::{CellStat, ResultTable};
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_obs::span;

/// The sequence lengths of Table II.
pub const SEQ_LENS: [usize; 3] = [1, 2, 5];

/// Runs Experiment A and returns Table II: rows are
/// `LSTM, {A3TGCN, ASTGCN, MTGNN} × {EUC, kNN, DTW, CORR}`, columns
/// `Seq1, Seq2, Seq5`, cells `mean(std)` MSE across individuals.
#[must_use]
pub fn run_experiment_a(scale: &ExperimentScale) -> ResultTable {
    let _exp_span = span!("experiment", name = "exp_a_table2");
    let dataset = scale.dataset();
    let columns: Vec<String> = SEQ_LENS.iter().map(|s| format!("Seq{s}")).collect();
    let mut table = ResultTable::new(
        "Table II: GNN models vs LSTM, single- and multi-step input (GDT = 20%)",
        columns,
    );

    // Baseline LSTM row.
    let _baseline_span = span!("condition", row = "Baseline LSTM");
    let lstm_cells: Vec<CellStat> = SEQ_LENS
        .iter()
        .map(|&seq| {
            let spec = scale.spec(ModelKind::Lstm, GraphSpec::None, seq);
            let outcomes = run_cohort(&dataset, &spec);
            CellStat::from_samples(&outcomes.iter().map(|o| o.mse).collect::<Vec<_>>())
        })
        .collect();
    table.push_row("Baseline LSTM", lstm_cells);
    drop(_baseline_span);

    // GNN rows grouped by metric, then model — matching the paper's
    // ordering (model varies fastest within each metric block).
    for metric in scale.static_metrics() {
        for model in ModelKind::gnns() {
            let row = format!("{}_{}", model.label(), metric.label());
            let _row_span = span!("condition", row = row.as_str());
            let cells: Vec<CellStat> = SEQ_LENS
                .iter()
                .map(|&seq| {
                    let spec = scale.spec(
                        model,
                        GraphSpec::Static {
                            metric,
                            gdt: DensityThreshold::Gdt20,
                        },
                        seq,
                    );
                    let outcomes = run_cohort(&dataset, &spec);
                    CellStat::from_samples(
                        &outcomes.iter().map(|o| o.mse).collect::<Vec<_>>(),
                    )
                })
                .collect();
            table.push_row(row, cells);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_structure() {
        // Tiny scale so the full grid stays fast enough for CI.
        let mut scale = ExperimentScale::tiny();
        scale.epochs = 2;
        scale.num_individuals = 2;
        let table = run_experiment_a(&scale);
        assert_eq!(table.columns, vec!["Seq1", "Seq2", "Seq5"]);
        // 1 baseline + 4 metrics × 3 GNNs.
        assert_eq!(table.rows.len(), 13);
        assert!(table.cell("Baseline LSTM", "Seq1").is_some());
        assert!(table.cell("MTGNN_CORR", "Seq5").is_some());
        for (label, cells) in &table.rows {
            for c in cells {
                assert!(c.mean.is_finite() && c.mean > 0.0, "bad cell in {label}");
            }
        }
    }
}
