//! Design-choice ablations beyond the paper's tables: how much each
//! MTGNN ingredient matters, plus trivial-baseline calibration rows.

use super::ExperimentScale;
use crate::evaluate::{persistence_mse, zero_prediction_mse};
use crate::exec::{expect_all, Executor, Job};
use crate::pipeline::{run_cohort, GraphSpec, RunSpec};
use crate::results::{CellStat, ResultTable};
use ema_data::{make_test_windows, split_train_test};
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_obs::span;
use ema_similarity::GraphMetric;

/// Input length used by the ablations.
pub const SEQ_LEN: usize = 5;

/// Runs the ablation suite. Rows:
///
/// * `Persistence` / `ZeroPrediction` — trivial baselines (no training);
/// * `VAR(5)` — the classic linear network-psychometrics baseline;
/// * `LSTM` — the paper's baseline;
/// * `MTGNN (learned, CORR prior)` — the full model;
/// * `MTGNN (learned, no prior)` — graph learning from scratch;
/// * `MTGNN (static only)` — graph-learning module disabled;
/// * `A3TGCN / ASTGCN (CORR)` — for context, each also with its
///   attention module ablated.
///
/// One column: test MSE at Seq5, GDT 20%.
#[must_use]
pub fn run_ablation(scale: &ExperimentScale) -> ResultTable {
    let _exp_span = span!("experiment", name = "ablation");
    let dataset = scale.dataset();
    let gdt = DensityThreshold::Gdt20;
    let corr = GraphMetric::Correlation;
    let mut table = ResultTable::new(
        "Ablation: MTGNN ingredients and trivial baselines (Seq5, GDT = 20%)",
        vec!["MSE".into()],
    );

    // Trivial baselines, evaluated per individual on the same split —
    // one executor job per individual, like every cohort pass.
    let jobs: Vec<Job<'_, (f64, f64)>> = dataset
        .individuals
        .iter()
        .map(|ind| {
            Job::new(format!("baseline_individual_{}", ind.id), move || {
                let (train, test) = split_train_test(&ind.data, 0.7);
                let w = make_test_windows(&train, &test, SEQ_LEN);
                (persistence_mse(&w), zero_prediction_mse(&w))
            })
        })
        .collect();
    let (persist, zeros): (Vec<f64>, Vec<f64>) =
        expect_all(Executor::from_env().run(jobs), "ablation baselines")
            .into_iter()
            .unzip();
    table.push_row("Persistence (x_t = x_{t-1})", vec![CellStat::from_samples(&persist)]);
    table.push_row("ZeroPrediction (mean)", vec![CellStat::from_samples(&zeros)]);

    let mut add_row = |label: &str, spec: RunSpec| {
        let _row_span = span!("condition", row = label);
        let outcomes = run_cohort(&dataset, &spec);
        let mses: Vec<f64> = outcomes.iter().map(|o| o.mse).collect();
        table.push_row(label, vec![CellStat::from_samples(&mses)]);
    };

    add_row("VAR(5)", scale.spec(ModelKind::Var, GraphSpec::None, SEQ_LEN));
    add_row("LSTM", scale.spec(ModelKind::Lstm, GraphSpec::None, SEQ_LEN));
    add_row(
        "MTGNN (learned, CORR prior)",
        scale.spec(ModelKind::Mtgnn, GraphSpec::Static { metric: corr, gdt }, SEQ_LEN),
    );
    add_row(
        "MTGNN (learned, no prior)",
        scale.spec(ModelKind::Mtgnn, GraphSpec::None, SEQ_LEN),
    );
    add_row(
        "MTGNN (static only)",
        RunSpec {
            learn_graph: false,
            ..scale.spec(ModelKind::Mtgnn, GraphSpec::Static { metric: corr, gdt }, SEQ_LEN)
        },
    );
    // Direct (GTS-style) graph learner — paper future work compares
    // alternative graph-learning modules.
    add_row(
        "MTGNN (direct learner, CORR prior)",
        RunSpec {
            graph_learner: ema_models::GraphLearnerKind::Direct,
            ..scale.spec(ModelKind::Mtgnn, GraphSpec::Static { metric: corr, gdt }, SEQ_LEN)
        },
    );

    add_row(
        "A3TGCN (CORR)",
        scale.spec(ModelKind::A3tgcn, GraphSpec::Static { metric: corr, gdt }, SEQ_LEN),
    );
    add_row(
        "A3TGCN (no temporal attention)",
        RunSpec {
            use_attention: false,
            ..scale.spec(ModelKind::A3tgcn, GraphSpec::Static { metric: corr, gdt }, SEQ_LEN)
        },
    );
    add_row(
        "ASTGCN (CORR)",
        scale.spec(ModelKind::Astgcn, GraphSpec::Static { metric: corr, gdt }, SEQ_LEN),
    );
    add_row(
        "ASTGCN (no spatial attention)",
        RunSpec {
            use_spatial_attention: false,
            ..scale.spec(ModelKind::Astgcn, GraphSpec::Static { metric: corr, gdt }, SEQ_LEN)
        },
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_structure() {
        let mut scale = ExperimentScale::tiny();
        scale.epochs = 2;
        scale.num_individuals = 2;
        let table = run_ablation(&scale);
        assert_eq!(table.rows.len(), 12);
        assert!(table.cell("LSTM", "MSE").is_some());
        assert!(table.cell("MTGNN (static only)", "MSE").is_some());
        // Zero prediction on z-normalised data should be around 1.
        let z = table.cell("ZeroPrediction (mean)", "MSE").unwrap();
        assert!(z.mean > 0.5 && z.mean < 2.0, "zero-pred MSE {z}");
    }
}
