//! Hyper-parameter exploration (paper Section V-D): the paper reports
//! tuning the learning rate and comparing 16 vs 32 hidden units before
//! settling on lr = 0.01, hidden = 32. This runner reproduces that
//! search for MTGNN.

use super::ExperimentScale;
use crate::pipeline::{run_cohort, GraphSpec};
use crate::results::{CellStat, ResultTable};
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_similarity::GraphMetric;

/// Learning rates swept (the paper settles on 0.01).
pub const LEARNING_RATES: [f64; 3] = [0.001, 0.01, 0.05];
/// Hidden widths swept (the paper compares 16 and 32).
pub const HIDDEN_UNITS: [usize; 2] = [16, 32];

/// Runs the sweep: rows = hidden widths, columns = learning rates,
/// model = MTGNN with a CORR prior at Seq5 / GDT 20%.
#[must_use]
pub fn run_hyperparameter_sweep(scale: &ExperimentScale) -> ResultTable {
    let dataset = scale.dataset();
    let columns: Vec<String> = LEARNING_RATES.iter().map(|lr| format!("lr={lr}")).collect();
    let mut table = ResultTable::new(
        "Hyper-parameter sweep (Sec. V-D): MTGNN_CORR, Seq5, GDT = 20%",
        columns,
    );
    for &hidden in &HIDDEN_UNITS {
        let cells: Vec<CellStat> = LEARNING_RATES
            .iter()
            .map(|&lr| {
                let mut spec = scale.spec(
                    ModelKind::Mtgnn,
                    GraphSpec::Static {
                        metric: GraphMetric::Correlation,
                        gdt: DensityThreshold::Gdt20,
                    },
                    5,
                );
                spec.model_config.hidden = hidden;
                spec.model_config.attn_dim = (hidden / 2).max(4);
                spec.train_config.learning_rate = lr;
                let outcomes = run_cohort(&dataset, &spec);
                CellStat::from_samples(&outcomes.iter().map(|o| o.mse).collect::<Vec<_>>())
            })
            .collect();
        table.push_row(format!("hidden={hidden}"), cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_structure() {
        let mut scale = ExperimentScale::tiny();
        scale.epochs = 2;
        scale.num_individuals = 2;
        let table = run_hyperparameter_sweep(&scale);
        assert_eq!(table.rows.len(), HIDDEN_UNITS.len());
        assert_eq!(table.columns.len(), LEARNING_RATES.len());
        assert!(table.cell("hidden=32", "lr=0.01").is_some());
    }
}
