//! Forecast-quality metrics beyond the paper's MSE: MAE, RMSE and R²,
//! plus a combined per-individual report.

use crate::json::{Json, JsonError};
use crate::train::predict_all;
use ema_data::WindowedData;
use ema_models::Forecaster;
use ema_tensor::Tensor;

/// All metrics for one (model, individual) evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastMetrics {
    /// Mean squared error (the paper's Eq. (1)).
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Coefficient of determination vs the test-set mean predictor;
    /// `1` is perfect, `0` matches the mean, negative is worse.
    pub r2: f64,
}

/// Computes all metrics from prediction and target matrices of equal
/// shape.
///
/// # Panics
/// Panics on shape mismatch.
#[must_use]
pub fn compute_metrics(preds: &Tensor, targets: &Tensor) -> ForecastMetrics {
    assert_eq!(preds.dims(), targets.dims(), "shape mismatch");
    let diff = preds.sub(targets);
    let mse = diff.square().mean();
    let mae = diff.abs().mean();
    let target_var = targets.variance();
    let r2 = if target_var > 0.0 {
        1.0 - mse / target_var
    } else {
        0.0
    };
    ForecastMetrics {
        mse,
        rmse: mse.sqrt(),
        mae,
        r2,
    }
}

/// Evaluates a trained model over a window set with every metric.
#[must_use]
pub fn evaluate_metrics(model: &dyn Forecaster, windows: &WindowedData) -> ForecastMetrics {
    let preds = predict_all(model, windows, 0);
    compute_metrics(&preds, &windows.targets_matrix())
}

impl ForecastMetrics {
    /// JSON encoding with one member per metric.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("mse", Json::Num(self.mse)),
            ("rmse", Json::Num(self.rmse)),
            ("mae", Json::Num(self.mae)),
            ("r2", Json::Num(self.r2)),
        ])
    }

    /// Decodes the [`Self::to_json_value`] encoding.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on a missing member or wrong type.
    pub fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            mse: v.require("mse")?.to_f64()?,
            rmse: v.require("rmse")?.to_f64()?,
            mae: v.require("mae")?.to_f64()?,
            r2: v.require("r2")?.to_f64()?,
        })
    }
}

impl std::fmt::Display for ForecastMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MSE {:.3} | RMSE {:.3} | MAE {:.3} | R² {:.3}",
            self.mse, self.rmse, self.mae, self.r2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_tensor::Rng64;

    #[test]
    fn perfect_prediction_metrics() {
        let mut rng = Rng64::seed_from(1);
        let t = Tensor::rand_normal(&[10, 3], 0.0, 1.0, &mut rng);
        let m = compute_metrics(&t, &t);
        assert_eq!(m.mse, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.mae, 0.0);
        assert!((m.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_prediction_has_zero_r2() {
        let mut rng = Rng64::seed_from(2);
        let targets = Tensor::rand_normal(&[200, 2], 0.0, 1.0, &mut rng);
        let mean_pred = Tensor::filled(&[200, 2], targets.mean());
        let m = compute_metrics(&mean_pred, &targets);
        assert!(m.r2.abs() < 0.05, "R² {} should be ≈ 0", m.r2);
    }

    #[test]
    fn rmse_is_sqrt_of_mse() {
        let mut rng = Rng64::seed_from(3);
        let a = Tensor::rand_normal(&[20, 2], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[20, 2], 0.0, 1.0, &mut rng);
        let m = compute_metrics(&a, &b);
        assert!((m.rmse * m.rmse - m.mse).abs() < 1e-12);
        assert!(m.mae <= m.rmse + 1e-12, "MAE must not exceed RMSE");
    }

    #[test]
    fn constant_targets_give_zero_r2() {
        let preds = Tensor::ones(&[5, 2]);
        let targets = Tensor::filled(&[5, 2], 3.0);
        let m = compute_metrics(&preds, &targets);
        assert_eq!(m.r2, 0.0);
        assert_eq!(m.mae, 2.0);
    }

    #[test]
    fn json_round_trip() {
        let m = ForecastMetrics {
            mse: 0.5,
            rmse: 0.5f64.sqrt(),
            mae: 0.4,
            r2: -0.0,
        };
        let back = ForecastMetrics::from_json_value(
            &crate::json::Json::parse(&m.to_json_value().pretty()).unwrap(),
        )
        .unwrap();
        assert_eq!(m, back);
        assert_eq!(back.rmse.to_bits(), m.rmse.to_bits());
        assert!(back.r2.is_sign_negative());
    }

    #[test]
    fn display_contains_all_metrics() {
        let m = ForecastMetrics {
            mse: 0.5,
            rmse: 0.707,
            mae: 0.4,
            r2: 0.5,
        };
        let s = m.to_string();
        assert!(s.contains("MSE") && s.contains("MAE") && s.contains("R²"));
    }

    #[test]
    fn evaluate_metrics_on_model() {
        use ema_data::make_windows;
        use ema_models::{build_model, ModelConfig, ModelKind};
        let mut rng = Rng64::seed_from(4);
        let data = Tensor::rand_normal(&[30, 4], 0.0, 1.0, &mut rng);
        let windows = make_windows(&data, 2);
        let model = build_model(ModelKind::Lstm, 4, 2, &ModelConfig::tiny(0), None);
        let m = evaluate_metrics(&*model, &windows);
        assert!(m.mse.is_finite() && m.mae.is_finite() && m.r2.is_finite());
        assert_eq!(m.mse, crate::evaluate::evaluate_mse(&*model, &windows));
    }
}
