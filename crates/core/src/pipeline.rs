//! The personalized per-individual pipeline and its parallel cohort
//! runner (scheduled by the [`crate::exec`] cohort execution engine).

use crate::cluster::TrainStrategy;
use crate::cohort::CohortPath;
use crate::evaluate::{evaluate_mse, evaluate_per_variable_mse};
use crate::exec::{expect_all, Executor, Job};
use crate::train::{train_model, TrainConfig};
use ema_data::{make_test_windows, make_windows, split_train_test, EmaDataset};
use ema_graph::sparsify::{sparsify, DensityThreshold};
use ema_graph::AdjacencyMatrix;
use ema_models::{
    build_model, A3tgcn, Astgcn, Forecaster, GraphLearnerKind, ModelConfig, ModelKind, Mtgnn,
};
use ema_obs::span;
use ema_similarity::{build_graph, GraphMetric};
use ema_tensor::Tensor;

/// Where a model's graph comes from.
#[derive(Debug, Clone)]
pub enum GraphSpec {
    /// No graph (the LSTM baseline).
    None,
    /// Similarity graph built per individual from the *training* data,
    /// sparsified to the given GDT.
    Static {
        /// Distance/similarity metric.
        metric: GraphMetric,
        /// Graph density threshold.
        gdt: DensityThreshold,
    },
    /// An externally supplied graph (e.g. an MTGNN-learned graph being
    /// fed to another model, Experiment C).
    Provided(AdjacencyMatrix),
}

impl GraphSpec {
    /// Short label for telemetry (obs span fields).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            GraphSpec::None => "none".to_string(),
            GraphSpec::Static { metric, gdt } => {
                format!("{}@{}", metric.label(), gdt.label())
            }
            GraphSpec::Provided(_) => "provided".to_string(),
        }
    }
}

/// Everything needed to run one model condition on one individual.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Which model to train.
    pub model: ModelKind,
    /// Graph source.
    pub graph: GraphSpec,
    /// Input window length (paper: 1, 2 or 5).
    pub seq_len: usize,
    /// Train/test split fraction (paper: 0.7).
    pub train_fraction: f64,
    /// Model hyper-parameters.
    pub model_config: ModelConfig,
    /// Training hyper-parameters.
    pub train_config: TrainConfig,
    /// For MTGNN: whether the graph-learning module is active
    /// (disabled = ablation).
    pub learn_graph: bool,
    /// For MTGNN: which graph-learner parameterisation to use.
    pub graph_learner: GraphLearnerKind,
    /// For A3TGCN: whether temporal attention is active (disabled =
    /// plain-TGCN ablation).
    pub use_attention: bool,
    /// For ASTGCN: whether spatial attention masks the Chebyshev stack
    /// (disabled = plain-ChebNet ablation).
    pub use_spatial_attention: bool,
    /// Which training path sharded cohort runs take
    /// ([`crate::cohort::run_cohort_sharded`]): the cohort-batched
    /// graph or the per-individual oracle. Bit-identical results.
    pub cohort_path: CohortPath,
    /// How sharded cohort runs train each individual: from scratch
    /// (idiographic) or warm-started from K-medoids cluster
    /// checkpoints ([`crate::cluster`]). Only
    /// [`crate::cohort::run_cohort_sharded`] applies the strategy;
    /// direct [`run_individual`] / [`crate::cohort::run_cohort_batch`]
    /// calls always train idiographically.
    pub train_strategy: TrainStrategy,
}

impl RunSpec {
    /// A spec with the paper's defaults for the given model and graph.
    #[must_use]
    pub fn new(model: ModelKind, graph: GraphSpec, seq_len: usize) -> Self {
        Self {
            model,
            graph,
            seq_len,
            train_fraction: 0.7,
            model_config: ModelConfig::default(),
            train_config: TrainConfig::default(),
            learn_graph: true,
            graph_learner: GraphLearnerKind::Embedding,
            use_attention: true,
            use_spatial_attention: true,
            cohort_path: CohortPath::default(),
            train_strategy: TrainStrategy::default(),
        }
    }
}

/// The result of one (individual, condition) run.
#[derive(Debug, Clone)]
pub struct IndividualOutcome {
    /// Individual id.
    pub id: usize,
    /// Test MSE (Eq. (1) for this individual).
    pub mse: f64,
    /// Per-variable test MSEs.
    pub per_variable_mse: Vec<f64>,
    /// Final training loss.
    pub final_train_loss: f64,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// The static graph used (when any), after sparsification.
    pub graph_used: Option<AdjacencyMatrix>,
    /// MTGNN's learned graph after training, when applicable.
    pub learned_graph: Option<AdjacencyMatrix>,
}

/// Builds the sparsified similarity graph for one individual from the
/// training portion of its data.
#[must_use]
pub fn graph_for_individual(
    train_data: &Tensor,
    metric: GraphMetric,
    gdt: DensityThreshold,
) -> AdjacencyMatrix {
    sparsify(&build_graph(train_data, metric), gdt)
}

/// Runs the full pipeline for one individual: split → graph → windows →
/// train → evaluate.
///
/// # Panics
/// Panics when the series is too short for the requested window length
/// or the spec is inconsistent (graph-free GNN).
#[must_use]
pub fn run_individual(id: usize, data: &Tensor, spec: &RunSpec) -> IndividualOutcome {
    // Pin the spec's kernel backend for the whole job — graph build and
    // evaluation matmuls included, not just the training loop. Each
    // cohort job runs wholly on one executor worker thread, so this
    // thread-local scope covers everything the job computes.
    let _kernel = spec.train_config.kernel_backend.scoped();
    let _individual_span = span!(
        "individual",
        individual = id,
        model = spec.model.label(),
        graph = spec.graph.label(),
        seq_len = spec.seq_len
    );
    let (train, test) = split_train_test(data, spec.train_fraction);
    let v = data.dims()[1];

    // Graph built from training data only — no test leakage.
    let graph = match &spec.graph {
        GraphSpec::None => None,
        GraphSpec::Static { metric, gdt } => {
            let _graph_span = span!(
                "build_graph",
                individual = id,
                metric = metric.label(),
                gdt = gdt.label()
            );
            Some(graph_for_individual(&train, *metric, *gdt))
        }
        GraphSpec::Provided(g) => Some(g.clone()),
    };

    let mut model: Box<dyn Forecaster> = match spec.model {
        ModelKind::Mtgnn => Box::new(Mtgnn::with_learner(
            v,
            spec.seq_len,
            graph.as_ref(),
            &spec.model_config,
            spec.learn_graph,
            spec.graph_learner,
        )),
        ModelKind::A3tgcn => Box::new(A3tgcn::with_options(
            v,
            graph.as_ref().expect("A3TGCN requires a graph"),
            &spec.model_config,
            spec.use_attention,
        )),
        ModelKind::Astgcn => Box::new(Astgcn::with_options(
            v,
            spec.seq_len,
            graph.as_ref().expect("ASTGCN requires a graph"),
            &spec.model_config,
            spec.use_spatial_attention,
        )),
        _ => build_model(spec.model, v, spec.seq_len, &spec.model_config, graph.as_ref()),
    };

    let train_windows = make_windows(&train, spec.seq_len);
    let test_windows = make_test_windows(&train, &test, spec.seq_len);

    // Per-individual dropout stream: derived from (run seed, id) up
    // front — never from draw order — so results are identical at any
    // thread count (see the seeding scheme in ema_tensor::random).
    let mut train_config = spec.train_config.clone();
    train_config.seed = ema_tensor::derive_stream_seed(spec.train_config.seed, id as u64);
    let report = {
        let _train_span = span!("train", individual = id, windows = train_windows.len());
        train_model(&mut *model, &train_windows, &train_config)
    };

    let (mse, per_variable_mse) = {
        let _eval_span = span!("evaluate", individual = id, windows = test_windows.len());
        (
            evaluate_mse(&*model, &test_windows),
            evaluate_per_variable_mse(&*model, &test_windows),
        )
    };

    // Extract the learned graph from MTGNN for Experiment C.
    let learned_graph = if spec.model == ModelKind::Mtgnn && spec.learn_graph {
        // Rebuild as the concrete type to reach learned_graph(); the
        // trait object was constructed above from the same path.
        let concrete = model
            .as_any_mtgnn()
            .expect("MTGNN model exposes its learned graph");
        Some(concrete.learned_graph())
    } else {
        None
    };

    // Kernel work from graph build + evaluation (training drained its
    // own share already) lands in the current phase before the job's
    // span closes; take-semantics keep this and the executor's
    // job-level drain from double counting.
    ema_obs::drain_kernel_counters();

    IndividualOutcome {
        id,
        mse,
        per_variable_mse,
        // 0.0 stands in for "no training loss" on a 0-epoch
        // warm-start restore run (nomothetic serving).
        final_train_loss: report.final_loss_or(0.0),
        epochs_run: report.epochs_run,
        graph_used: graph,
        learned_graph,
    }
}

/// Runs a condition across a whole cohort on the environment-configured
/// executor (`--threads` / `EMA_THREADS`, default = available
/// parallelism). Results are returned in individual order and are
/// byte-identical at every thread count.
#[must_use]
pub fn run_cohort(dataset: &EmaDataset, spec: &RunSpec) -> Vec<IndividualOutcome> {
    run_cohort_with(dataset, spec, &Executor::from_env())
}

/// [`run_cohort`] on an explicit executor (tests pin thread counts;
/// binaries pass the CLI-configured one).
///
/// Each individual becomes one [`Job`] — split → graph construction →
/// windows → train → evaluate, all hoisted into the job body — so the
/// executor is free to schedule the cohort however its backend likes.
///
/// # Panics
/// Propagates the first individual's panic (with its job label) after
/// the whole queue has drained.
#[must_use]
pub fn run_cohort_with(
    dataset: &EmaDataset,
    spec: &RunSpec,
    executor: &Executor,
) -> Vec<IndividualOutcome> {
    let _cohort_span = span!(
        "cohort",
        model = spec.model.label(),
        graph = spec.graph.label(),
        seq_len = spec.seq_len,
        individuals = dataset.individuals.len(),
        threads = executor.threads()
    );
    let jobs: Vec<Job<'_, IndividualOutcome>> = dataset
        .individuals
        .iter()
        .map(|ind| {
            Job::new(format!("individual_{}", ind.id), move || {
                run_individual(ind.id, &ind.data, spec)
            })
        })
        .collect();
    expect_all(executor.run(jobs), "cohort")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_data::{EmaGenerator, GeneratorConfig};

    fn quick_spec(model: ModelKind, graph: GraphSpec) -> RunSpec {
        RunSpec {
            model_config: ModelConfig::tiny(0),
            train_config: TrainConfig::quick(15, 3),
            ..RunSpec::new(model, graph, 2)
        }
    }

    fn dataset() -> EmaDataset {
        EmaGenerator::new(GeneratorConfig::quick(3, 6, 11)).generate()
    }

    #[test]
    fn lstm_individual_run() {
        let ds = dataset();
        let spec = quick_spec(ModelKind::Lstm, GraphSpec::None);
        let out = run_individual(0, &ds.individuals[0].data, &spec);
        assert!(out.mse.is_finite() && out.mse > 0.0);
        assert_eq!(out.per_variable_mse.len(), 6);
        assert!(out.graph_used.is_none());
        assert!(out.learned_graph.is_none());
    }

    #[test]
    fn gnn_individual_run_builds_graph() {
        let ds = dataset();
        let spec = quick_spec(
            ModelKind::A3tgcn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt40,
            },
        );
        let out = run_individual(0, &ds.individuals[0].data, &spec);
        let g = out.graph_used.unwrap();
        assert_eq!(g.num_nodes(), 6);
        // GDT 40% of 30 possible edges = 12.
        assert!(g.num_edges() <= 12);
    }

    #[test]
    fn mtgnn_run_exposes_learned_graph() {
        let ds = dataset();
        let spec = quick_spec(
            ModelKind::Mtgnn,
            GraphSpec::Static {
                metric: GraphMetric::Euclidean,
                gdt: DensityThreshold::Gdt20,
            },
        );
        let out = run_individual(0, &ds.individuals[0].data, &spec);
        let learned = out.learned_graph.expect("MTGNN yields a learned graph");
        assert_eq!(learned.num_nodes(), 6);
        assert!(learned.num_edges() > 0);
    }

    #[test]
    fn cohort_runs_all_individuals_in_order() {
        let ds = dataset();
        let spec = quick_spec(ModelKind::Lstm, GraphSpec::None);
        let outcomes = run_cohort(&ds, &spec);
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.id, ds.individuals[i].id);
            assert!(o.mse.is_finite());
        }
    }

    #[test]
    fn cohort_is_deterministic() {
        let ds = dataset();
        let spec = quick_spec(ModelKind::Lstm, GraphSpec::None);
        let a: Vec<f64> = run_cohort(&ds, &spec).iter().map(|o| o.mse).collect();
        let b: Vec<f64> = run_cohort(&ds, &spec).iter().map(|o| o.mse).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn cohort_results_identical_across_backends() {
        let ds = dataset();
        let spec = quick_spec(ModelKind::Lstm, GraphSpec::None);
        let mse = |executor: &Executor| -> Vec<f64> {
            run_cohort_with(&ds, &spec, executor).iter().map(|o| o.mse).collect()
        };
        let sequential = mse(&Executor::sequential());
        assert_eq!(sequential, mse(&Executor::with_threads(2)));
        assert_eq!(sequential, mse(&Executor::with_threads(7)));
    }

    #[test]
    fn provided_graph_is_used_verbatim() {
        let ds = dataset();
        let g = AdjacencyMatrix::complete(6);
        let spec = quick_spec(ModelKind::A3tgcn, GraphSpec::Provided(g.clone()));
        let out = run_individual(0, &ds.individuals[0].data, &spec);
        assert_eq!(
            out.graph_used.unwrap().weights().data(),
            g.weights().data()
        );
    }
}
