//! Multi-step-ahead forecasting by iterative 1-lag rollout.
//!
//! The paper's task is strictly 1-lag; this extension rolls a trained
//! model forward by feeding its own predictions back as inputs — the
//! natural way a clinician would project a participant's trajectory
//! several beeps ahead.

use ema_models::Forecaster;
use ema_tensor::{Rng64, Tensor};

/// Rolls `model` forward `horizon` steps from `seed_window`
/// (`[seq_len, V]`), returning the predicted trajectory `[horizon, V]`.
/// Each step appends the newest prediction and drops the oldest row.
///
/// # Panics
/// Panics if `horizon == 0` or the window width mismatches the model.
#[must_use]
pub fn iterative_forecast(
    model: &dyn Forecaster,
    seed_window: &Tensor,
    horizon: usize,
    rng: &mut Rng64,
) -> Tensor {
    assert!(horizon > 0, "horizon must be positive");
    assert_eq!(
        seed_window.dims()[1],
        model.num_variables(),
        "window has {} variables, model expects {}",
        seed_window.dims()[1],
        model.num_variables()
    );
    let seq = seed_window.dims()[0];
    let v = model.num_variables();
    let mut window = seed_window.clone();
    let mut rows = Vec::with_capacity(horizon);
    for _ in 0..horizon {
        let pred = model.predict(&window, rng); // [V]
        rows.push(pred.clone());
        // Slide: drop the oldest row, append the prediction.
        let tail = if seq > 1 {
            window.slice_rows(1, seq)
        } else {
            pred.reshaped(&[1, v])
        };
        window = if seq > 1 {
            tail.vcat(&pred.reshaped(&[1, v]))
        } else {
            tail
        };
    }
    Tensor::stack_rows(&rows)
}

/// Horizon-wise MSE of iterative forecasts against a ground-truth
/// continuation: element `h` scores the `(h+1)`-step-ahead predictions
/// across all valid starting points in `data`.
///
/// # Panics
/// Panics if `data` is too short for even one rollout.
#[must_use]
pub fn horizon_mse(
    model: &dyn Forecaster,
    data: &Tensor,
    seq_len: usize,
    horizon: usize,
    rng: &mut Rng64,
) -> Vec<f64> {
    let t = data.dims()[0];
    assert!(
        t > seq_len + horizon,
        "series of {t} rows too short for seq {seq_len} + horizon {horizon}"
    );
    let mut acc = vec![0.0; horizon];
    let mut count = 0usize;
    for start in 0..(t - seq_len - horizon + 1) {
        let window = data.slice_rows(start, start + seq_len);
        let forecast = iterative_forecast(model, &window, horizon, rng);
        for (h, slot) in acc.iter_mut().enumerate() {
            let truth = data.row(start + seq_len + h);
            *slot += forecast.row(h).sub(&truth).square().mean();
        }
        count += 1;
    }
    acc.iter().map(|a| a / count as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_models::{build_model, ModelConfig, ModelKind};

    #[test]
    fn rollout_shape() {
        let model = build_model(ModelKind::Lstm, 4, 3, &ModelConfig::tiny(0), None);
        let mut rng = Rng64::seed_from(1);
        let window = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let f = iterative_forecast(&*model, &window, 6, &mut rng);
        assert_eq!(f.dims(), &[6, 4]);
        assert!(f.all_finite());
    }

    #[test]
    fn rollout_with_seq1_window() {
        let model = build_model(ModelKind::Var, 3, 1, &ModelConfig::tiny(0), None);
        let mut rng = Rng64::seed_from(2);
        let window = Tensor::rand_normal(&[1, 3], 0.0, 1.0, &mut rng);
        let f = iterative_forecast(&*model, &window, 4, &mut rng);
        assert_eq!(f.dims(), &[4, 3]);
    }

    #[test]
    fn first_rollout_step_matches_single_prediction() {
        let model = build_model(ModelKind::Lstm, 4, 2, &ModelConfig::tiny(3), None);
        let mut rng = Rng64::seed_from(4);
        let window = Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut rng);
        let direct = model.predict(&window, &mut rng);
        let rolled = iterative_forecast(&*model, &window, 3, &mut rng);
        assert_eq!(rolled.row(0).data(), direct.data());
    }

    #[test]
    fn horizon_mse_grows_or_stays_for_contracting_models() {
        // An untrained model's iterative error is finite at every horizon.
        let model = build_model(ModelKind::Lstm, 3, 2, &ModelConfig::tiny(5), None);
        let mut rng = Rng64::seed_from(6);
        let data = Tensor::rand_normal(&[30, 3], 0.0, 1.0, &mut rng);
        let errs = horizon_mse(&*model, &data, 2, 4, &mut rng);
        assert_eq!(errs.len(), 4);
        assert!(errs.iter().all(|e| e.is_finite() && *e > 0.0));
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn rejects_zero_horizon() {
        let model = build_model(ModelKind::Lstm, 3, 2, &ModelConfig::tiny(0), None);
        let mut rng = Rng64::seed_from(7);
        let window = Tensor::zeros(&[2, 3]);
        let _ = iterative_forecast(&*model, &window, 0, &mut rng);
    }
}
