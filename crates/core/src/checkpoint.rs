//! Model checkpointing: serialise a [`ParamStore`] to JSON and restore
//! it, so a personalized model trained once can be reused (e.g. the
//! Experiment-C plumbing, or deployment after a study).

use crate::json::Json;
use ema_nn::ParamStore;
use ema_tensor::Tensor;
use std::io;
use std::path::Path;

/// Serialisable snapshot of every parameter in a store.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Parameter entries in registration order.
    pub params: Vec<ParamEntry>,
}

/// One named tensor.
#[derive(Debug, Clone)]
pub struct ParamEntry {
    /// Diagnostic name (e.g. `"lstm.w_ih"`).
    pub name: String,
    /// Tensor dims.
    pub dims: Vec<usize>,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Checkpoint {
    /// Captures the current parameter values of a store.
    #[must_use]
    pub fn capture(store: &ParamStore) -> Self {
        let params = store
            .ids()
            .into_iter()
            .map(|id| {
                let t = store.value(id);
                ParamEntry {
                    name: store.name(id).to_string(),
                    dims: t.dims().to_vec(),
                    data: t.data().to_vec(),
                }
            })
            .collect();
        Self { params }
    }

    /// Restores the snapshot into a store with an *identical layout*
    /// (same registration order, names and shapes — i.e. the same model
    /// architecture and config).
    ///
    /// # Errors
    /// Returns `io::Error` with `InvalidData` on any name/shape
    /// mismatch, leaving already-written parameters in place.
    pub fn restore(&self, store: &mut ParamStore) -> io::Result<()> {
        let ids = store.ids();
        if ids.len() != self.params.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint has {} params, store has {}",
                    self.params.len(),
                    ids.len()
                ),
            ));
        }
        for (id, entry) in ids.into_iter().zip(self.params.iter()) {
            if store.name(id) != entry.name {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "parameter name mismatch: store {:?} vs checkpoint {:?}",
                        store.name(id),
                        entry.name
                    ),
                ));
            }
            if store.value(id).dims() != entry.dims.as_slice() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shape mismatch for {:?}: {:?} vs {:?}",
                        entry.name,
                        store.value(id).dims(),
                        entry.dims
                    ),
                ));
            }
            let tensor = Tensor::from_vec(&entry.dims, entry.data.clone())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            store.load(id, tensor);
        }
        Ok(())
    }

    /// Serialises to pretty JSON: `{"params": [{"name", "dims",
    /// "data"}, ...]}` with bit-exact f64 round-tripping.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::obj(vec![(
            "params",
            Json::Arr(
                self.params
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::Str(p.name.clone())),
                            (
                                "dims",
                                Json::Arr(p.dims.iter().map(|&d| Json::Num(d as f64)).collect()),
                            ),
                            (
                                "data",
                                Json::Arr(p.data.iter().map(|&v| Json::Num(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
        .pretty()
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    /// Returns `io::Error` with `InvalidData` on malformed JSON or a
    /// wrong shape.
    pub fn from_json(json: &str) -> io::Result<Self> {
        let invalid = |e: crate::json::JsonError| {
            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
        };
        let v = Json::parse(json).map_err(invalid)?;
        let mut params = Vec::new();
        for entry in v.require("params").map_err(invalid)?.to_arr().map_err(invalid)? {
            let name = entry
                .require("name")
                .and_then(Json::to_str)
                .map_err(invalid)?
                .to_string();
            let dims = entry
                .require("dims")
                .and_then(Json::to_arr)
                .map_err(invalid)?
                .iter()
                .map(Json::to_usize)
                .collect::<Result<Vec<_>, _>>()
                .map_err(invalid)?;
            let data = entry
                .require("data")
                .and_then(Json::to_arr)
                .map_err(invalid)?
                .iter()
                .map(Json::to_f64)
                .collect::<Result<Vec<_>, _>>()
                .map_err(invalid)?;
            params.push(ParamEntry { name, dims, data });
        }
        Ok(Self { params })
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    /// Propagates filesystem and parse errors.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_models::{build_model, ModelConfig, ModelKind};
    use ema_tensor::Rng64;

    #[test]
    fn capture_restore_round_trip_preserves_predictions() {
        let mut model = build_model(ModelKind::Lstm, 4, 2, &ModelConfig::tiny(1), None);
        let mut rng = Rng64::seed_from(2);
        let window = Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut rng);
        let before = model.predict(&window, &mut rng);

        let ckpt = Checkpoint::capture(model.params());
        // Scramble the parameters, then restore.
        for id in model.params().ids() {
            let dims = model.params().value(id).dims().to_vec();
            model
                .params_mut()
                .load(id, Tensor::rand_normal(&dims, 0.0, 1.0, &mut rng));
        }
        let scrambled = model.predict(&window, &mut rng);
        assert_ne!(before.data(), scrambled.data());

        ckpt.restore(model.params_mut()).unwrap();
        let after = model.predict(&window, &mut rng);
        assert_eq!(before.data(), after.data());
    }

    #[test]
    fn json_round_trip() {
        let model = build_model(ModelKind::Var, 3, 2, &ModelConfig::tiny(3), None);
        let ckpt = Checkpoint::capture(model.params());
        let parsed = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(parsed.params.len(), ckpt.params.len());
        assert_eq!(parsed.params[0].name, ckpt.params[0].name);
        assert_eq!(parsed.params[0].data, ckpt.params[0].data);
    }

    #[test]
    fn json_round_trip_is_bit_exact_on_edge_values() {
        // Hand-built checkpoint carrying every awkward f64 we can emit.
        let ckpt = Checkpoint {
            params: vec![ParamEntry {
                name: "edge.w".into(),
                dims: vec![2, 3],
                data: vec![-0.0, 5e-324, 1e308, -1e-308, 0.1 + 0.2, 2f64.powi(53) - 1.0],
            }],
        };
        let parsed = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(parsed.params[0].name, "edge.w");
        assert_eq!(parsed.params[0].dims, vec![2, 3]);
        for (a, b) in ckpt.params[0].data.iter().zip(parsed.params[0].data.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a:e} lost bits in JSON round trip");
        }
        assert!(parsed.params[0].data[0].is_sign_negative());
    }

    #[test]
    fn from_json_rejects_malformed_checkpoints() {
        for bad in [
            "not json",
            "{}",
            r#"{"params": 3}"#,
            r#"{"params": [{"name": "w", "dims": [2.5], "data": []}]}"#,
            r#"{"params": [{"name": "w", "dims": [1]}]}"#,
        ] {
            assert!(Checkpoint::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn restore_rejects_architecture_mismatch() {
        let small = build_model(ModelKind::Lstm, 3, 2, &ModelConfig::tiny(4), None);
        let mut big = build_model(ModelKind::Lstm, 5, 2, &ModelConfig::tiny(4), None);
        let ckpt = Checkpoint::capture(small.params());
        let err = ckpt.restore(big.params_mut()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn restore_rejects_wrong_model_kind() {
        let lstm = build_model(ModelKind::Lstm, 4, 2, &ModelConfig::tiny(5), None);
        let mut var = build_model(ModelKind::Var, 4, 2, &ModelConfig::tiny(5), None);
        let ckpt = Checkpoint::capture(lstm.params());
        assert!(ckpt.restore(var.params_mut()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let model = build_model(ModelKind::Var, 2, 1, &ModelConfig::tiny(6), None);
        let ckpt = Checkpoint::capture(model.params());
        let dir = std::env::temp_dir().join("ema_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.params.len(), ckpt.params.len());
        let _ = std::fs::remove_file(path);
    }
}
