//! Full-batch personalized training (paper Section V-D).

use crate::checkpoint::Checkpoint;
use ema_autodiff::{Grads, Tape};
use ema_data::WindowedData;
use ema_models::{Forecaster, ForwardCtx, WindowBatch};
use ema_nn::{global_grad_norm, Adam, Optimizer, OptimizerConfig};
use ema_obs::metrics::{EPOCH_BUCKETS, GRAD_NORM_BUCKETS, LOSS_BUCKETS};
use ema_obs::point;
use ema_tensor::{KernelBackend, Rng64, Tensor};

/// Which forward graph [`train_model`] builds each epoch. Both paths
/// are bit-identical in results (enforced by the batched-equivalence
/// property tests and `tests/determinism.rs`); they differ only in
/// tape-graph shape and speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardPath {
    /// One batched graph over all windows via
    /// [`Forecaster::predict_batch`] — O(depth) tape nodes per epoch.
    /// The hot path and the default.
    #[default]
    Batched,
    /// One subgraph per window via [`Forecaster::predict_window`] —
    /// O(W·depth) nodes. The reference oracle, kept for equivalence
    /// testing and debugging.
    PerWindow,
}

/// Training hyper-parameters. Defaults follow the paper: Adam with
/// lr = 0.01, one batch per individual, 300 epochs, dropout handled by
/// the models themselves (rate 0.3).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs (paper: 300).
    pub epochs: usize,
    /// Adam learning rate (paper: 0.01).
    pub learning_rate: f64,
    /// Global-norm gradient clip (0 disables).
    pub grad_clip: f64,
    /// Seed for dropout masks.
    pub seed: u64,
    /// Stop early when the training loss improves by less than this
    /// relative amount over `patience` epochs. **`0` disables early
    /// stopping entirely** (the default), in which case `patience` is
    /// never consulted and every run goes the full `epochs`.
    pub early_stop_rel: f64,
    /// Early-stopping patience in epochs. Only meaningful when
    /// `early_stop_rel > 0`; ignored otherwise (see `early_stop_rel`).
    pub patience: usize,
    /// Which forward graph to build each epoch (default: batched).
    pub forward_path: ForwardPath,
    /// Which matmul kernel backend the run executes on (default: the
    /// process resolution of `EMA_KERNEL` — SIMD where available).
    /// `Scalar` pins the bit-identity oracle regardless of environment.
    pub kernel_backend: KernelBackend,
    /// Warm start: restore these parameters (bit-exact) over the
    /// model's seeded init before the first epoch — the
    /// cluster-then-personalize fine-tune path. **RNG contract:** the
    /// model's init draws come from its own constructor RNG
    /// (`ModelConfig::seed`), entirely separate from this config's
    /// dropout stream, so a warm-started run consumes *identical*
    /// training draw order to a cold run — the restore only overwrites
    /// values. With `epochs == 0` the run is a pure restore: no
    /// training RNG is created and zero draws are consumed.
    /// `Arc` so one cluster checkpoint is shared across a shard's
    /// individuals without copying parameters.
    pub warm_start: Option<std::sync::Arc<Checkpoint>>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 300,
            learning_rate: 0.01,
            grad_clip: 5.0,
            seed: 7,
            early_stop_rel: 0.0,
            patience: 25,
            forward_path: ForwardPath::default(),
            kernel_backend: KernelBackend::default(),
            warm_start: None,
        }
    }
}

impl TrainConfig {
    /// A short schedule for tests and quick experiment presets.
    #[must_use]
    pub fn quick(epochs: usize, seed: u64) -> Self {
        Self {
            epochs,
            seed,
            early_stop_rel: 1e-4,
            ..Self::default()
        }
    }
}

/// What happened during training.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Training loss per epoch (length ≤ `epochs` with early stopping).
    pub losses: Vec<f64>,
    /// Global gradient L2 norm per epoch (same length as `losses`),
    /// measured before clipping.
    pub grad_norms: Vec<f64>,
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Whether the early-stopping rule truncated the schedule.
    pub early_stopped: bool,
}

impl TrainReport {
    /// The final training loss.
    ///
    /// # Panics
    /// Panics if no epochs ran.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        *self.losses.last().expect("at least one epoch")
    }

    /// The final training loss, or `default` when no epochs ran (a
    /// 0-epoch warm-start restore run has no training loss).
    #[must_use]
    pub fn final_loss_or(&self, default: f64) -> f64 {
        self.losses.last().copied().unwrap_or(default)
    }

    /// The first epoch's loss.
    ///
    /// # Panics
    /// Panics if no epochs ran.
    #[must_use]
    pub fn initial_loss(&self) -> f64 {
        self.losses[0]
    }

    /// The last epoch's pre-clip global gradient norm.
    ///
    /// # Panics
    /// Panics if no epochs ran.
    #[must_use]
    pub fn final_grad_norm(&self) -> f64 {
        *self.grad_norms.last().expect("at least one epoch")
    }
}

/// Trains a model on an individual's windows with full-batch Adam:
/// every epoch, all windows are forwarded on one tape, the stacked
/// predictions are scored against the stacked targets with MSE, and one
/// optimizer step is taken ("each individual's data is processed in a
/// single batch", Sec. V-D).
///
/// With `warm_start` set, the checkpoint's parameters are restored
/// (bit-exact) over the seeded init first; `epochs == 0` is then a
/// pure restore run that consumes zero RNG draws and returns an empty
/// report.
///
/// # Panics
/// Panics on an empty window set, or on zero epochs without a
/// warm-start checkpoint.
pub fn train_model(
    model: &mut dyn Forecaster,
    windows: &WindowedData,
    config: &TrainConfig,
) -> TrainReport {
    assert!(!windows.is_empty(), "cannot train on zero windows");
    assert!(
        config.epochs > 0 || config.warm_start.is_some(),
        "need at least one epoch (or a warm-start checkpoint to restore)"
    );
    // Pin the configured kernel backend for the whole run. The scope is
    // thread-local and training runs entirely on the calling thread, so
    // concurrent runs with different backends cannot perturb each other.
    let _kernel = config.kernel_backend.scoped();
    if let Some(ckpt) = &config.warm_start {
        ckpt.restore(model.params_mut())
            .expect("warm-start checkpoint must match the model architecture");
    }
    if config.epochs == 0 {
        // Pure restore: no training RNG is ever created, no draws
        // consumed (the warm-start RNG contract's degenerate case).
        return TrainReport {
            losses: Vec::new(),
            grad_norms: Vec::new(),
            epochs_run: 0,
            early_stopped: false,
        };
    }
    let mut adam = Adam::new(OptimizerConfig {
        learning_rate: config.learning_rate,
        grad_clip: config.grad_clip,
        ..OptimizerConfig::default()
    });
    let mut rng = Rng64::seed_from(config.seed);
    let targets = windows.targets_matrix();

    let obs = ema_obs::recorder();
    let mut losses = Vec::with_capacity(config.epochs);
    let mut grad_norms = Vec::with_capacity(config.epochs);
    let mut early_stopped = false;
    let mut best = f64::INFINITY;
    let mut since_best = 0usize;
    // One tape and one gradient workspace for the whole run: reset
    // keeps the node storage between epochs and recycles every tensor
    // buffer through the pool, so steady-state epochs allocate almost
    // nothing. Vars do not survive reset, so parameters rebind per epoch.
    let mut tape = Tape::new();
    let mut grads = Grads::empty();
    // The stacked input batch and the target matrix are constant across
    // epochs: build the batch once and push the target leaf as a
    // persistent tape prefix that `reset_to` keeps alive.
    let batch = match config.forward_path {
        ForwardPath::Batched => Some(WindowBatch::from_windows(&windows.inputs)),
        ForwardPath::PerWindow => None,
    };
    let tgt = tape.leaf(targets);
    let keep = tape.len();
    for epoch in 0..config.epochs {
        tape.reset_to(keep);
        let binding = model.params().bind(&tape);
        let mut ctx = ForwardCtx::train(&mut rng);
        let stacked = match &batch {
            Some(batch) => model.predict_batch(&tape, &binding, batch, &mut ctx),
            None => {
                let preds: Vec<_> = windows
                    .inputs
                    .iter()
                    .map(|w| model.predict_window(&tape, &binding, w, &mut ctx))
                    .collect();
                tape.stack_rows(&preds)
            }
        };
        let loss = tape.mse(stacked, tgt);
        let loss_value = tape.value(loss).data()[0];
        losses.push(loss_value);

        tape.backward_into(loss, &mut grads);
        let grad_norm = global_grad_norm(model.params(), &binding, &grads);
        grad_norms.push(grad_norm);
        adam.step(model.params_mut(), &binding, &grads);

        point!(
            "train_epoch",
            epoch = epoch,
            loss = loss_value,
            grad_norm = grad_norm,
            tape_nodes = tape.len()
        );
        obs.observe("train_loss", &LOSS_BUCKETS, loss_value);
        // Graph size per epoch: constant across epochs by construction
        // (one tape graph, reset each epoch), so a gauge suffices — a
        // drift here means a model is leaking nodes into the tape.
        obs.set_gauge("tape_nodes", tape.len() as f64);

        // Optional early stopping on stalled training loss.
        if config.early_stop_rel > 0.0 {
            if loss_value < best * (1.0 - config.early_stop_rel) {
                best = loss_value;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= config.patience {
                    early_stopped = true;
                    point!(
                        "early_stop",
                        epoch = epoch,
                        best_loss = best.min(loss_value),
                        patience = config.patience,
                        rel_threshold = config.early_stop_rel
                    );
                    obs.inc_counter("early_stops", 1);
                    break;
                }
            }
        }
    }
    let epochs_run = losses.len();
    obs.observe("epochs_run", &EPOCH_BUCKETS, epochs_run as f64);
    obs.observe("grad_norm_final", &GRAD_NORM_BUCKETS, *grad_norms.last().expect("ran"));
    // Attribute the kernel work of a direct (non-executor) training run
    // to the current phase; under the executor the job-level drain in
    // `exec` usually gets there first — take-semantics make both safe.
    ema_obs::drain_kernel_counters();
    TrainReport { losses, grad_norms, epochs_run, early_stopped }
}

/// Predicts every window in evaluation mode, returning `[n, V]`.
///
/// Runs the batched forward (one tape graph for all windows); eval
/// mode draws no randomness, so the rows are bit-identical to
/// per-window [`Forecaster::predict`] calls.
#[must_use]
pub fn predict_all(model: &dyn Forecaster, windows: &WindowedData, seed: u64) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    let batch = WindowBatch::from_windows(&windows.inputs);
    let tape = Tape::new();
    let binding = model.params().bind(&tape);
    let mut ctx = ForwardCtx::eval(&mut rng);
    let out = model.predict_batch(&tape, &binding, &batch, &mut ctx);
    tape.value(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ema_data::make_windows;
    use ema_models::{build_model, ModelConfig, ModelKind};
    use ema_tensor::Tensor;

    fn toy_windows(seq: usize) -> WindowedData {
        // A predictable AR(1)-ish series: x_t = 0.8 x_{t-1}.
        let t = 40;
        let mut rows = vec![vec![1.0, -1.0, 0.5]];
        for i in 1..t {
            let prev: &Vec<f64> = &rows[i - 1];
            rows.push(prev.iter().map(|&x| 0.8 * x).collect());
        }
        make_windows(&Tensor::from_vec2(rows).unwrap(), seq)
    }

    #[test]
    fn lstm_training_reduces_loss() {
        let windows = toy_windows(2);
        let mut model = build_model(ModelKind::Lstm, 3, 2, &ModelConfig::tiny(0), None);
        let report = train_model(&mut *model, &windows, &TrainConfig::quick(80, 1));
        assert!(
            report.final_loss() < report.initial_loss() * 0.5,
            "loss {} -> {}",
            report.initial_loss(),
            report.final_loss()
        );
    }

    #[test]
    fn early_stopping_truncates() {
        let windows = toy_windows(2);
        let mut model = build_model(ModelKind::Lstm, 3, 2, &ModelConfig::tiny(0), None);
        let mut cfg = TrainConfig::quick(500, 2);
        cfg.early_stop_rel = 0.05; // aggressive: stop as soon as gains slow
        cfg.patience = 5;
        let report = train_model(&mut *model, &windows, &cfg);
        assert!(report.epochs_run < 500, "early stopping never fired");
        assert!(report.early_stopped);
        assert_eq!(report.losses.len(), report.epochs_run);
        assert_eq!(report.grad_norms.len(), report.epochs_run);
        assert!(report.final_grad_norm().is_finite());
    }

    #[test]
    fn disabled_early_stop_ignores_patience() {
        // early_stop_rel = 0 (the default) must run the full schedule
        // no matter how small `patience` is.
        let windows = toy_windows(2);
        let mut model = build_model(ModelKind::Lstm, 3, 2, &ModelConfig::tiny(0), None);
        let mut cfg = TrainConfig { epochs: 12, seed: 4, ..TrainConfig::default() };
        cfg.patience = 1;
        assert_eq!(cfg.early_stop_rel, 0.0);
        let report = train_model(&mut *model, &windows, &cfg);
        assert_eq!(report.epochs_run, 12);
        assert!(!report.early_stopped);
    }

    #[test]
    fn predict_all_shape() {
        let windows = toy_windows(3);
        let model = build_model(ModelKind::Lstm, 3, 3, &ModelConfig::tiny(0), None);
        let preds = predict_all(&*model, &windows, 0);
        assert_eq!(preds.dims(), &[windows.len(), 3]);
    }

    #[test]
    #[should_panic(expected = "zero windows")]
    fn rejects_empty_windows() {
        let empty = WindowedData {
            inputs: vec![],
            targets: vec![],
            seq_len: 1,
        };
        let mut model = build_model(ModelKind::Lstm, 3, 1, &ModelConfig::tiny(0), None);
        let _ = train_model(&mut *model, &empty, &TrainConfig::default());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let windows = toy_windows(2);
        let run = |seed| {
            let mut model = build_model(ModelKind::Lstm, 3, 2, &ModelConfig::tiny(9), None);
            train_model(&mut *model, &windows, &TrainConfig::quick(30, seed)).final_loss()
        };
        assert_eq!(run(5), run(5));
    }
}
