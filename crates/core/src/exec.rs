//! The cohort execution engine.
//!
//! The paper's workload is embarrassingly parallel — one personalized
//! model per individual, trained independently (Eq. 1 averages
//! per-individual MSE) — so a cohort run is a list of independent
//! [`Job`]s, not a hand-rolled `for` loop. An [`Executor`] schedules
//! those jobs on one of two zero-dependency backends:
//!
//! * [`Backend::Sequential`] — jobs run in order on the caller's
//!   thread;
//! * [`Backend::ThreadPool`] — a `std::thread::scope` work queue with a
//!   fixed worker count.
//!
//! Results always come back **in job order**, and every random stream a
//! job consumes is derived up front from `(run seed, job id)` via
//! [`ema_tensor::derive_stream_seed`] — never from sequential draw
//! order — so output JSON is byte-identical at every thread count
//! (enforced by `tests/determinism.rs`).
//!
//! ## Choosing the worker count
//!
//! Precedence, highest first:
//!
//! 1. an explicit [`Executor::with_threads`] at the call site;
//! 2. [`set_global_threads`] — set once from a `--threads N` CLI flag;
//! 3. the `EMA_THREADS` environment variable;
//! 4. `std::thread::available_parallelism()`.
//!
//! ## Panic isolation
//!
//! A panicking job is caught on its worker, reported as a
//! [`JobError`] carrying the job label and panic message, and the pool
//! survives to drain the rest of the queue. Callers that want the old
//! fail-fast behavior use [`expect_all`], which re-raises the first
//! failure with its label attached.
//!
//! ## Telemetry
//!
//! Each job runs inside an [`ema_obs`] worker scope: its span tree is
//! tagged with a `worker` id and buffered per worker, flushing through
//! the recorder in one batch when the job finishes, so the JSONL
//! manifest stays parseable and each job's events stay contiguous even
//! with many workers interleaving.
//!
//! Utilization telemetry (all timing-only, so it lives exclusively in
//! obs output): every job observation lands in the
//! `exec.job_latency_ns` histogram, and each worker publishes
//! `exec.worker_busy_ns.<w>` / `exec.worker_wait_ns.<w>` /
//! `exec.worker_jobs.<w>` counters when its run-loop ends — busy is the
//! summed job time, wait is the rest of the loop (queue contention +
//! idle tail). `obs_report` renders these as a per-worker utilization
//! table with p50/p99 job latency.

use ema_obs::metrics::TIME_NS_BUCKETS;
use ema_obs::{span, ObsMode, Recorder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// One schedulable unit of work: a label (for telemetry and panic
/// reports) plus the closure that produces the result.
pub struct Job<'a, T> {
    label: String,
    task: Box<dyn FnOnce() -> T + Send + 'a>,
}

impl<'a, T> Job<'a, T> {
    /// Wraps a closure as a job. The label names the job in obs spans
    /// and in [`JobError`]s (e.g. `individual_17`).
    pub fn new(label: impl Into<String>, task: impl FnOnce() -> T + Send + 'a) -> Self {
        Self { label: label.into(), task: Box::new(task) }
    }

    /// The job's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A job that panicked: which one, and what the panic said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The failed job's label.
    pub label: String,
    /// The panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job '{}' panicked: {}", self.label, self.message)
    }
}

/// What one job produced: its output, or the panic that killed it.
pub type JobResult<T> = Result<T, JobError>;

/// The two scheduling strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Jobs run in order on the calling thread.
    Sequential,
    /// Jobs are pulled from a shared queue by `threads` workers.
    ThreadPool {
        /// Worker count (≥ 2; 1 collapses to `Sequential`).
        threads: usize,
    },
}

/// Schedules [`Job`]s on a [`Backend`]; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    backend: Backend,
}

/// Process-wide `--threads` override; 0 means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker-count override (the `--threads N` CLI
/// flag lands here). `0` clears the override.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::SeqCst);
}

/// The process-wide worker-count override, if one is set.
#[must_use]
pub fn global_threads() -> Option<usize> {
    match GLOBAL_THREADS.load(Ordering::SeqCst) {
        0 => None,
        n => Some(n),
    }
}

/// Worker count from the environment: the global override, then
/// `EMA_THREADS`, then available parallelism (see the module docs).
#[must_use]
pub fn default_threads() -> usize {
    if let Some(n) = global_threads() {
        return n;
    }
    if let Ok(raw) = std::env::var("EMA_THREADS") {
        match raw.parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("warning: invalid EMA_THREADS={raw:?}; using available parallelism"),
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

impl Executor {
    /// An executor that runs jobs in order on the calling thread.
    #[must_use]
    pub fn sequential() -> Self {
        Self { backend: Backend::Sequential }
    }

    /// An executor with exactly `threads` workers (1 collapses to the
    /// sequential backend — same results either way).
    ///
    /// # Panics
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "an executor needs at least one thread");
        if threads == 1 {
            Self::sequential()
        } else {
            Self { backend: Backend::ThreadPool { threads } }
        }
    }

    /// The environment-configured executor ([`default_threads`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_threads(default_threads())
    }

    /// The configured worker count (1 for the sequential backend).
    #[must_use]
    pub fn threads(&self) -> usize {
        match self.backend {
            Backend::Sequential => 1,
            Backend::ThreadPool { threads } => threads,
        }
    }

    /// The scheduling strategy in use.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Runs every job and returns the results **in job order**. A
    /// panicking job becomes a [`JobError`] in its slot; the remaining
    /// jobs still run.
    pub fn run<T: Send>(&self, jobs: Vec<Job<'_, T>>) -> Vec<JobResult<T>> {
        match self.backend {
            Backend::Sequential => {
                let recorder = ema_obs::recorder();
                let loop_start = recorder.elapsed_ns();
                let mut busy_ns = 0u64;
                let mut jobs_run = 0u64;
                let n = jobs.len();
                let results = jobs
                    .into_iter()
                    .enumerate()
                    .map(|(i, job)| {
                        recorder.set_gauge("exec.queue_depth", (n - 1 - i) as f64);
                        let (result, job_ns) = execute_job(job, 0);
                        busy_ns += job_ns;
                        jobs_run += 1;
                        result
                    })
                    .collect();
                let total_ns = recorder.elapsed_ns().saturating_sub(loop_start);
                publish_worker_utilization(recorder, 0, jobs_run, busy_ns, total_ns);
                results
            }
            Backend::ThreadPool { threads } => run_pool(jobs, threads),
        }
    }

    /// Fans `f` out over `0..count` as jobs labelled
    /// `<label>_<index>`, returning results in index order.
    pub fn map<T, F>(&self, count: usize, label: &str, f: F) -> Vec<JobResult<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        let f = &f;
        self.run(
            (0..count)
                .map(|i| Job::new(format!("{label}_{i}"), move || f(i)))
                .collect(),
        )
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Unwraps a result batch, panicking with the label and message of the
/// first failed job — the fail-fast path the pipeline uses.
///
/// # Panics
/// Panics if any job failed.
pub fn expect_all<T>(results: Vec<JobResult<T>>, what: &str) -> Vec<T> {
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("{what}: {e}"),
        })
        .collect()
}

/// Runs one job under a worker scope, converting a panic into a
/// [`JobError`]. The tensor-pool hit/miss deltas accumulated while the
/// job ran are published as obs counters, the kernel work counters the
/// thread accumulated are drained into per-phase metrics, and the job's
/// wall time feeds the `exec.job_latency_ns` histogram (telemetry only —
/// none of it can change results). Returns the result plus the job's
/// wall nanoseconds so the worker loop can account busy time.
fn execute_job<T>(job: Job<'_, T>, worker: usize) -> (JobResult<T>, u64) {
    let Job { label, task } = job;
    let recorder = ema_obs::recorder();
    let _worker_scope = recorder.worker_scope(worker);
    let started_ns = recorder.elapsed_ns();
    let outcome = {
        let _job_span = span!("job", label = label.as_str(), worker = worker);
        let before = ema_tensor::pool::stats();
        let outcome = catch_unwind(AssertUnwindSafe(task));
        let after = ema_tensor::pool::stats();
        recorder.inc_counter("pool_hits", after.hits - before.hits);
        recorder.inc_counter("pool_misses", after.misses - before.misses);
        // Attribute the matmul work this thread just did (including any
        // a panicking job got through) to the current run phase.
        recorder.drain_kernel_counters();
        outcome
    };
    let job_ns = recorder.elapsed_ns().saturating_sub(started_ns);
    recorder.observe("exec.job_latency_ns", &TIME_NS_BUCKETS, job_ns as f64);
    let result = match outcome {
        Ok(value) => Ok(value),
        Err(payload) => Err(JobError { label, message: panic_message(payload.as_ref()) }),
    };
    (result, job_ns)
}

/// Publishes one worker's utilization counters at the end of its run
/// loop: summed job (busy) time, the remainder of the loop (wait:
/// queue handoff + idle tail) and how many jobs it took. Skipped when
/// the worker ran nothing — idle workers still show up through the
/// pool's worker count, and zero-filled counters would drown summaries.
fn publish_worker_utilization(
    recorder: &Recorder,
    worker: usize,
    jobs_run: u64,
    busy_ns: u64,
    total_ns: u64,
) {
    if recorder.mode() == ObsMode::Off || jobs_run == 0 {
        return;
    }
    recorder.inc_counter(&format!("exec.worker_busy_ns.{worker}"), busy_ns);
    recorder.inc_counter(&format!("exec.worker_wait_ns.{worker}"), total_ns.saturating_sub(busy_ns));
    recorder.inc_counter(&format!("exec.worker_jobs.{worker}"), jobs_run);
}

/// Renders a panic payload as text (panics carry `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Poison-tolerant lock: a caught job panic must never wedge the pool.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The thread-pool backend: a shared index queue over scoped threads.
fn run_pool<T: Send>(jobs: Vec<Job<'_, T>>, threads: usize) -> Vec<JobResult<T>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n);
    // Each job sits in its own slot so a worker takes ownership without
    // contending on one queue lock for the whole run.
    let queue: Vec<Mutex<Option<Job<'_, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<JobResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let next = &next;
            scope.spawn(move || {
                // Scoped workers die with every run, so warm tensor-pool
                // buffers are handed across runs via the shelf: adopt a
                // parked pool on the way in, park ours on the way out.
                ema_tensor::pool::adopt_stashed();
                let recorder = ema_obs::recorder();
                let loop_start = recorder.elapsed_ns();
                let mut busy_ns = 0u64;
                let mut jobs_run = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Jobs not yet claimed by any worker; races between
                    // workers are benign (telemetry only, last write
                    // wins, and the gauge drains to 0 either way).
                    recorder.set_gauge("exec.queue_depth", (n - 1 - i) as f64);
                    let job = lock(&queue[i]).take().expect("each job is taken exactly once");
                    let (result, job_ns) = execute_job(job, worker);
                    busy_ns += job_ns;
                    jobs_run += 1;
                    *lock(&slots[i]) = Some(result);
                }
                let total_ns = recorder.elapsed_ns().saturating_sub(loop_start);
                publish_worker_utilization(recorder, worker, jobs_run, busy_ns, total_ns);
                ema_tensor::pool::stash_local();
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            lock(&slot).take().expect("every job slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_squaring(n: usize) -> Vec<Job<'static, usize>> {
        (0..n).map(|i| Job::new(format!("sq_{i}"), move || i * i)).collect()
    }

    #[test]
    fn sequential_preserves_order() {
        let out = Executor::sequential().run(jobs_squaring(5));
        let values: Vec<usize> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn pool_preserves_order_at_any_thread_count() {
        for threads in [2, 3, 8] {
            let out = Executor::with_threads(threads).run(jobs_squaring(17));
            let values: Vec<usize> = out.into_iter().map(Result::unwrap).collect();
            assert_eq!(values, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(Executor::sequential().run(Vec::<Job<'_, ()>>::new()).is_empty());
        assert!(Executor::with_threads(4).run(Vec::<Job<'_, ()>>::new()).is_empty());
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = Executor::with_threads(16).run(jobs_squaring(3));
        let values: Vec<usize> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![0, 1, 4]);
    }

    #[test]
    fn panicking_job_reports_error_and_pool_drains_queue() {
        let jobs: Vec<Job<'_, usize>> = (0..12)
            .map(|i| {
                Job::new(format!("j{i}"), move || {
                    assert!(i != 5, "job five exploded");
                    i
                })
            })
            .collect();
        let out = Executor::with_threads(3).run(jobs);
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.label, "j5");
                assert!(err.message.contains("job five exploded"), "{}", err.message);
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn sequential_backend_also_isolates_panics() {
        let jobs: Vec<Job<'_, ()>> =
            vec![Job::new("boom", || panic!("kapow")), Job::new("ok", || ())];
        let out = Executor::sequential().run(jobs);
        assert!(out[0].is_err());
        assert!(out[1].is_ok());
    }

    #[test]
    #[should_panic(expected = "cohort: job 'boom' panicked: kapow")]
    fn expect_all_propagates_with_label() {
        let out = Executor::sequential().run(vec![Job::new("boom", || -> () { panic!("kapow") })]);
        let _ = expect_all(out, "cohort");
    }

    #[test]
    fn map_labels_by_index() {
        let out = Executor::with_threads(2).map(4, "ind", |i| i + 10);
        let values: Vec<usize> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![10, 11, 12, 13]);
    }

    #[test]
    fn single_thread_collapses_to_sequential() {
        assert_eq!(Executor::with_threads(1).backend(), Backend::Sequential);
        assert_eq!(Executor::with_threads(1).threads(), 1);
        assert_eq!(Executor::with_threads(6).threads(), 6);
    }

    #[test]
    fn executors_publish_utilization_counters() {
        // Exercises the global recorder, so it reads deltas (other
        // tests may run jobs concurrently) and skips under EMA_OBS=off.
        if ema_obs::mode() == ObsMode::Off {
            return;
        }
        let sum_jobs = || -> u64 {
            let snap = ema_obs::recorder().metrics_snapshot();
            match snap.require("counters").unwrap() {
                ema_obs::Json::Obj(pairs) => pairs
                    .iter()
                    .filter(|(k, _)| k.starts_with("exec.worker_jobs."))
                    .map(|(_, v)| v.to_usize().unwrap() as u64)
                    .sum(),
                _ => panic!("counters is an object"),
            }
        };
        let latency_total = || -> u64 {
            let snap = ema_obs::recorder().metrics_snapshot();
            snap.require("histograms")
                .and_then(|h| h.require("exec.job_latency_ns"))
                .and_then(|h| h.require("total"))
                .ok()
                .and_then(|t| t.to_usize().ok())
                .unwrap_or(0) as u64
        };
        let (jobs_before, lat_before) = (sum_jobs(), latency_total());
        let out = Executor::with_threads(2).run(jobs_squaring(6));
        assert_eq!(out.len(), 6);
        let out = Executor::sequential().run(jobs_squaring(2));
        assert_eq!(out.len(), 2);
        assert!(
            sum_jobs() >= jobs_before + 8,
            "worker_jobs counters did not account for all jobs"
        );
        assert!(
            latency_total() >= lat_before + 8,
            "job latency histogram missed observations"
        );
    }

    #[test]
    fn borrowed_data_flows_into_jobs() {
        // Jobs may borrow from the caller (the pipeline borrows the
        // dataset); the scoped pool makes the lifetime work.
        let data = vec![1.0_f64, 2.0, 4.0];
        let data = &data;
        let out = Executor::with_threads(2).map(3, "borrow", |i| data[i] * 2.0);
        let values: Vec<f64> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![2.0, 4.0, 8.0]);
    }
}
