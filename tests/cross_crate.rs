//! Cross-crate integration: data IO feeding the pipeline, learned graphs
//! flowing between models, and graph transformations composing.

use ema_core::pipeline::{run_individual, GraphSpec, RunSpec};
use ema_core::train::TrainConfig;
use ema_data::io::{from_csv, to_csv};
use ema_data::preprocess::z_normalize;
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_graph::chebyshev::chebyshev_from_adjacency;
use ema_graph::normalize::{gcn_norm, spectral_radius};
use ema_graph::sparsify::{sparsify, DensityThreshold};
use ema_models::{ModelConfig, ModelKind};
use ema_similarity::{build_graph, GraphMetric};

#[test]
fn csv_round_trip_preserves_pipeline_results() {
    let ds = EmaGenerator::new(GeneratorConfig::quick(1, 6, 50)).generate();
    let ind = &ds.individuals[0];

    // Serialise, re-parse, re-normalise — pipeline must agree.
    let csv = to_csv(&ind.raw, &ds.variable_names);
    let (names, parsed_raw) = from_csv(&csv).unwrap();
    assert_eq!(names, ds.variable_names);
    let parsed_data = z_normalize(&parsed_raw);
    ema_tensor::assert_tensors_close(&parsed_data, &ind.data, 1e-9);

    let spec = RunSpec {
        model_config: ModelConfig::tiny(2),
        train_config: TrainConfig::quick(8, 4),
        ..RunSpec::new(ModelKind::Lstm, GraphSpec::None, 2)
    };
    let direct = run_individual(0, &ind.data, &spec);
    let via_csv = run_individual(0, &parsed_data, &spec);
    assert_eq!(direct.mse, via_csv.mse);
}

#[test]
fn similarity_graph_composes_with_graph_transformations() {
    // Seeded property: the metric × GDT composition must hold for any
    // generated individual, not just one fixed seed.
    use ema_check::{prop_assert, Check};
    Check::named("cross_crate::similarity_graph_composes_with_graph_transformations")
        .cases(6)
        .run(
            |rng| rng.next_u64() % 10_000,
            |seed| {
                let ds = EmaGenerator::new(GeneratorConfig::quick(1, 8, *seed)).generate();
                let data = &ds.individuals[0].data;
                for metric in GraphMetric::paper_metrics() {
                    let g = build_graph(data, metric);
                    // Every paper GDT level yields a usable propagation matrix.
                    for gdt in DensityThreshold::all() {
                        let s = sparsify(&g, gdt);
                        let a_hat = gcn_norm(&s);
                        prop_assert!(a_hat.all_finite(), "{} {:?}", metric.label(), gdt);
                        // An odd GDT edge budget can split one symmetric edge
                        // pair, leaving Â slightly asymmetric; allow a small
                        // excursion above the symmetric bound of 1.
                        let r = spectral_radius(&a_hat, 100);
                        prop_assert!(r <= 1.02, "{} Â radius {r}", metric.label());
                        // And a bounded Chebyshev stack for ASTGCN.
                        let cheb = chebyshev_from_adjacency(&s, 3);
                        prop_assert!(cheb.len() == 3);
                        prop_assert!(cheb.iter().all(ema_tensor::Tensor::all_finite));
                    }
                }
                Ok(())
            },
        );
}

#[test]
fn learned_graph_feeds_other_models() {
    // The Experiment-C plumbing: MTGNN's learned graph must be a valid
    // input for both A3TGCN and ASTGCN.
    let ds = EmaGenerator::new(GeneratorConfig::quick(1, 7, 52)).generate();
    let ind = &ds.individuals[0];
    let mtgnn_spec = RunSpec {
        model_config: ModelConfig::tiny(3),
        train_config: TrainConfig::quick(10, 6),
        ..RunSpec::new(
            ModelKind::Mtgnn,
            GraphSpec::Static {
                metric: GraphMetric::Knn(3),
                gdt: DensityThreshold::Gdt20,
            },
            2,
        )
    };
    let learned = run_individual(ind.id, &ind.data, &mtgnn_spec)
        .learned_graph
        .expect("learned graph");

    for model in [ModelKind::A3tgcn, ModelKind::Astgcn] {
        let spec = RunSpec {
            model_config: ModelConfig::tiny(3),
            train_config: TrainConfig::quick(6, 7),
            ..RunSpec::new(model, GraphSpec::Provided(learned.clone()), 2)
        };
        let out = run_individual(ind.id, &ind.data, &spec);
        assert!(
            out.mse.is_finite(),
            "{} failed on the learned graph",
            model.label()
        );
    }
}

#[test]
fn ground_truth_graphs_survive_variable_selection() {
    use ema_data::preprocess::select_variables;
    let ds = EmaGenerator::new(GeneratorConfig::quick(2, 8, 53)).generate();
    let sub = select_variables(&ds, &[1, 3, 5, 7]);
    sub.validate(30);
    for (orig, proj) in ds.individuals.iter().zip(sub.individuals.iter()) {
        let g_orig = orig.ground_truth.as_ref().unwrap();
        let g_proj = proj.ground_truth.as_ref().unwrap();
        assert_eq!(g_proj.num_nodes(), 4);
        assert_eq!(g_proj.weight(0, 1), g_orig.weight(1, 3));
    }
}

#[test]
fn dataset_statistics_match_paper_shape_at_full_config() {
    // The default generator config mirrors the paper's dataset: check
    // N/V/T̄ without paying for full generation (use fewer individuals).
    let cfg = GeneratorConfig::default();
    assert_eq!(cfg.num_individuals, 100);
    assert_eq!(cfg.num_variables, 26);
    assert_eq!(cfg.mean_time_points, 140);
    assert_eq!(cfg.likert_levels, 7);

    let small = GeneratorConfig {
        num_individuals: 3,
        ..cfg
    };
    let ds = EmaGenerator::new(small).generate();
    assert_eq!(ds.num_variables(), 26);
    let mean_t = ds.mean_time_points();
    assert!(
        (100.0..=190.0).contains(&mean_t),
        "mean T {mean_t} far from 140"
    );
    assert_eq!(ds.variable_names[0], "cheerful");
}
