//! Reduced-scale checks that the paper's qualitative findings hold:
//! the *shape* of the results (who wins) rather than absolute values.
//!
//! These use small cohorts and short schedules so they run in CI; the
//! bench binaries reproduce the full tables.

use ema_core::experiments::ExperimentScale;
use ema_core::pipeline::{run_cohort, GraphSpec};
use ema_core::results::CellStat;
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_similarity::GraphMetric;

fn shape_scale() -> ExperimentScale {
    let mut s = ExperimentScale::tiny();
    s.num_individuals = 4;
    s.num_variables = 8;
    s.mean_time_points = 100;
    s.epochs = 50;
    s.data_seed = 31337;
    s
}

fn cohort_mean(scale: &ExperimentScale, model: ModelKind, graph: GraphSpec, seq: usize) -> f64 {
    let ds = scale.dataset();
    let spec = scale.spec(model, graph, seq);
    let mses: Vec<f64> = run_cohort(&ds, &spec).iter().map(|o| o.mse).collect();
    CellStat::from_samples(&mses).mean
}

#[test]
fn mtgnn_beats_lstm_on_average() {
    // The paper's headline: MTGNN ≈ 0.84 vs LSTM ≈ 1.02.
    let scale = shape_scale();
    let corr = GraphSpec::Static {
        metric: GraphMetric::Correlation,
        gdt: DensityThreshold::Gdt20,
    };
    let lstm = cohort_mean(&scale, ModelKind::Lstm, GraphSpec::None, 5);
    let mtgnn = cohort_mean(&scale, ModelKind::Mtgnn, corr, 5);
    assert!(
        mtgnn < lstm,
        "MTGNN ({mtgnn:.3}) did not beat LSTM ({lstm:.3})"
    );
}

#[test]
fn models_learn_beyond_the_zero_predictor() {
    // On z-normalised data, predicting 0 gives MSE ≈ 1; trained models
    // must do better (the paper's GNNs land at 0.84–0.9).
    let scale = shape_scale();
    let corr = GraphSpec::Static {
        metric: GraphMetric::Correlation,
        gdt: DensityThreshold::Gdt20,
    };
    let mtgnn = cohort_mean(&scale, ModelKind::Mtgnn, corr, 5);
    assert!(mtgnn < 1.05, "MTGNN ({mtgnn:.3}) not better than chance");
}

#[test]
fn random_graph_hurts_astgcn_more_than_mtgnn() {
    // Paper: ASTGCN degrades to ~1.06 with RAND while MTGNN repairs the
    // graph (~0.85). Check the degradation *ordering* at reduced scale:
    // the random-vs-correlation gap should be worse for ASTGCN.
    let scale = shape_scale();
    let gdt = DensityThreshold::Gdt20;
    let corr = |m| {
        cohort_mean(
            &scale,
            m,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt,
            },
            5,
        )
    };
    let rand = |m| {
        cohort_mean(
            &scale,
            m,
            GraphSpec::Static {
                metric: GraphMetric::Random(99),
                gdt,
            },
            5,
        )
    };
    let astgcn_gap = rand(ModelKind::Astgcn) - corr(ModelKind::Astgcn);
    let mtgnn_gap = rand(ModelKind::Mtgnn) - corr(ModelKind::Mtgnn);
    assert!(
        astgcn_gap > mtgnn_gap - 0.05,
        "random graphs hurt MTGNN ({mtgnn_gap:.3}) more than ASTGCN ({astgcn_gap:.3})"
    );
}

#[test]
fn gnn_mse_is_in_a_sane_band() {
    // All trained models should land in a plausible MSE band on
    // z-normalised data: far below 2 and above 0.
    let scale = shape_scale();
    for (model, graph) in [
        (ModelKind::Lstm, GraphSpec::None),
        (
            ModelKind::A3tgcn,
            GraphSpec::Static {
                metric: GraphMetric::Euclidean,
                gdt: DensityThreshold::Gdt20,
            },
        ),
    ] {
        let m = cohort_mean(&scale, model, graph, 2);
        assert!(
            m > 0.05 && m < 2.0,
            "{} MSE {m:.3} outside sane band",
            model.label()
        );
    }
}
