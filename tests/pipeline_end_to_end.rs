//! End-to-end pipeline test: synthetic study → graphs → training →
//! evaluation, across every model family.

use ema_core::pipeline::{run_cohort, run_individual, GraphSpec, RunSpec};
use ema_core::train::TrainConfig;
use ema_data::{EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_models::{ModelConfig, ModelKind};
use ema_similarity::GraphMetric;

fn quick_spec(model: ModelKind, graph: GraphSpec, seq: usize) -> RunSpec {
    RunSpec {
        model_config: ModelConfig::tiny(1),
        train_config: TrainConfig::quick(12, 5),
        ..RunSpec::new(model, graph, seq)
    }
}

#[test]
fn every_model_family_runs_end_to_end() {
    let ds = EmaGenerator::new(GeneratorConfig::quick(2, 8, 42)).generate();
    ds.validate(30);
    let corr = GraphSpec::Static {
        metric: GraphMetric::Correlation,
        gdt: DensityThreshold::Gdt40,
    };
    for (kind, graph) in [
        (ModelKind::Lstm, GraphSpec::None),
        (ModelKind::A3tgcn, corr.clone()),
        (ModelKind::Astgcn, corr.clone()),
        (ModelKind::Mtgnn, corr),
    ] {
        let spec = quick_spec(kind, graph, 2);
        let out = run_individual(0, &ds.individuals[0].data, &spec);
        assert!(
            out.mse.is_finite() && out.mse > 0.0,
            "{} produced MSE {}",
            kind.label(),
            out.mse
        );
        assert!(
            out.final_train_loss.is_finite(),
            "{} diverged in training",
            kind.label()
        );
    }
}

#[test]
fn training_reduces_loss_on_every_model() {
    let ds = EmaGenerator::new(GeneratorConfig::quick(1, 6, 43)).generate();
    let corr = GraphSpec::Static {
        metric: GraphMetric::Correlation,
        gdt: DensityThreshold::Gdt100,
    };
    for (kind, graph) in [
        (ModelKind::Lstm, GraphSpec::None),
        (ModelKind::Mtgnn, corr),
    ] {
        let mut spec = quick_spec(kind, graph, 2);
        spec.train_config = TrainConfig::quick(40, 9);
        spec.train_config.early_stop_rel = 0.0;
        let out = run_individual(0, &ds.individuals[0].data, &spec);
        // The trained model should at least approach the target-variance
        // level on the training loss.
        assert!(
            out.final_train_loss < 1.1,
            "{} final train loss {}",
            kind.label(),
            out.final_train_loss
        );
    }
}

#[test]
fn every_seq_len_works_for_every_model() {
    let ds = EmaGenerator::new(GeneratorConfig::quick(1, 6, 44)).generate();
    let graph = GraphSpec::Static {
        metric: GraphMetric::Euclidean,
        gdt: DensityThreshold::Gdt20,
    };
    for seq in [1usize, 2, 5] {
        for kind in ModelKind::all() {
            let g = if kind.uses_graph() {
                graph.clone()
            } else {
                GraphSpec::None
            };
            let mut spec = quick_spec(kind, g, seq);
            spec.train_config = TrainConfig::quick(4, 2);
            let out = run_individual(0, &ds.individuals[0].data, &spec);
            assert!(
                out.mse.is_finite(),
                "{} seq {seq} not finite",
                kind.label()
            );
        }
    }
}

#[test]
fn cohort_parallelism_matches_serial() {
    let ds = EmaGenerator::new(GeneratorConfig::quick(4, 6, 45)).generate();
    let spec = quick_spec(ModelKind::Lstm, GraphSpec::None, 2);
    let parallel: Vec<f64> = run_cohort(&ds, &spec).iter().map(|o| o.mse).collect();
    let serial: Vec<f64> = ds
        .individuals
        .iter()
        .map(|ind| run_individual(ind.id, &ind.data, &spec).mse)
        .collect();
    assert_eq!(parallel, serial, "parallel cohort diverged from serial");
}

#[test]
fn trained_model_beats_untrained() {
    // Compare *training* losses: more epochs must fit the training data
    // better. (Test MSE can move either way on a single tiny individual
    // because of overfitting, so it is not asserted here; the cohort-
    // level test lives in paper_shape.rs.)
    let ds = EmaGenerator::new(GeneratorConfig::quick(1, 6, 46)).generate();
    let data = &ds.individuals[0].data;
    let run = |epochs| {
        let mut spec = quick_spec(ModelKind::Lstm, GraphSpec::None, 2);
        spec.train_config = TrainConfig::quick(epochs, 3);
        spec.train_config.early_stop_rel = 0.0;
        run_individual(0, data, &spec).final_train_loss
    };
    let trained = run(60);
    let untrained = run(1);
    assert!(
        trained < untrained,
        "training made things worse: {trained} vs {untrained}"
    );
}
