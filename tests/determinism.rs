//! End-to-end determinism guard: the entire pipeline — synthetic data,
//! graph construction, training, evaluation, result aggregation and the
//! in-house JSON writer — must produce *byte-identical* artifacts when
//! re-run with the same seeds. This is the contract every experiment
//! record in `results/` relies on.

use ema_core::checkpoint::Checkpoint;
use ema_core::experiments::ExperimentScale;
use ema_core::pipeline::{run_cohort_with, GraphSpec};
use ema_core::Executor;
use ema_core::{ForwardPath, KernelBackend};
use ema_core::results::{CellStat, ResultTable};
use ema_graph::sparsify::DensityThreshold;
use ema_models::ModelKind;
use ema_similarity::GraphMetric;
use std::sync::Mutex;

/// Serialises the tests that flip the process-global obs mode; without
/// it they would race through `set_mode` and `begin_run_in`.
static OBS_MODE_LOCK: Mutex<()> = Mutex::new(());

/// A seconds-scale slice of the Table II pipeline: one LSTM row and one
/// graph-model row over a tiny cohort.
fn tiny_results_json() -> String {
    tiny_results_json_with(&Executor::from_env())
}

/// [`tiny_results_json`] on an explicit executor, so tests can pin the
/// thread count.
fn tiny_results_json_with(executor: &Executor) -> String {
    tiny_results_json_on(executor, ForwardPath::default())
}

/// [`tiny_results_json_with`] with an explicit training forward path
/// (batched hot path vs per-window oracle).
fn tiny_results_json_on(executor: &Executor, forward_path: ForwardPath) -> String {
    tiny_results_json_kernel(executor, forward_path, KernelBackend::default())
}

/// The full knob set: executor, forward path, and matmul kernel
/// backend. Pinning the backend in the spec makes the probe independent
/// of the `EMA_KERNEL` environment the test process runs under.
fn tiny_results_json_kernel(
    executor: &Executor,
    forward_path: ForwardPath,
    kernel_backend: KernelBackend,
) -> String {
    let mut scale = ExperimentScale::tiny();
    scale.num_individuals = 2;
    scale.epochs = 3;
    let dataset = scale.dataset();

    let mut table = ResultTable::new("determinism probe", vec!["Seq2".to_string()]);
    for (label, model, graph) in [
        ("Baseline LSTM", ModelKind::Lstm, GraphSpec::None),
        (
            "MTGNN_CORR",
            ModelKind::Mtgnn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
        ),
    ] {
        let mut spec = scale.spec(model, graph, 2);
        spec.train_config.forward_path = forward_path;
        spec.train_config.kernel_backend = kernel_backend;
        let outcomes = run_cohort_with(&dataset, &spec, executor);
        let mses: Vec<f64> = outcomes.iter().map(|o| o.mse).collect();
        table.push_row(label, vec![CellStat::from_samples(&mses)]);
    }
    table.to_json()
}

#[test]
fn same_seed_pipeline_runs_emit_byte_identical_json() {
    let first = tiny_results_json();
    let second = tiny_results_json();
    assert!(
        first == second,
        "same-seed pipeline runs diverged:\n--- first ---\n{first}\n--- second ---\n{second}"
    );
    // The record must also survive a parse round trip bit-exactly.
    let parsed = ResultTable::from_json(&first).unwrap();
    assert_eq!(parsed.to_json(), first);
}

/// The batched forward path (one tape graph per epoch,
/// `Forecaster::predict_batch`) must emit results JSON byte-identical
/// to the per-window oracle (`predict_window` per window), at both
/// thread counts — dropout masks are drawn window-major so the RNG
/// stream, and hence every byte, matches.
#[test]
fn batched_and_per_window_paths_emit_identical_results_json() {
    let batched_seq = tiny_results_json_on(&Executor::sequential(), ForwardPath::Batched);
    let oracle_seq = tiny_results_json_on(&Executor::sequential(), ForwardPath::PerWindow);
    assert!(
        batched_seq == oracle_seq,
        "threads=1: batched vs per-window diverged:\n--- batched ---\n{batched_seq}\n--- oracle ---\n{oracle_seq}"
    );
    let batched_pool = tiny_results_json_on(&Executor::with_threads(4), ForwardPath::Batched);
    let oracle_pool = tiny_results_json_on(&Executor::with_threads(4), ForwardPath::PerWindow);
    assert!(
        batched_pool == oracle_pool,
        "threads=4: batched vs per-window diverged:\n--- batched ---\n{batched_pool}\n--- oracle ---\n{oracle_pool}"
    );
    assert!(batched_seq == batched_pool, "batched path: threads=1 vs threads=4 diverged");
}

/// The cohort executor's headline guarantee: results JSON is
/// byte-identical at every thread count, because each individual's
/// random streams are derived from `(run seed, id)` rather than from
/// sequential draw order.
#[test]
fn thread_count_never_changes_results_json() {
    let sequential = tiny_results_json_with(&Executor::sequential());
    let pooled = tiny_results_json_with(&Executor::with_threads(4));
    assert!(
        sequential == pooled,
        "threads=1 vs threads=4 diverged:\n--- threads=1 ---\n{sequential}\n--- threads=4 ---\n{pooled}"
    );
}

/// The same invariance with full telemetry streaming: worker-tagged,
/// per-worker-buffered obs events must not leak into the results, and
/// the JSONL manifest written by a 4-thread run stays parseable with
/// every job's span tree tagged by its worker.
#[test]
fn thread_count_invariance_holds_under_full_obs() {
    use ema_core::Json;
    use ema_obs::{recorder, set_mode, ObsMode};
    use std::path::Path;

    let _guard = OBS_MODE_LOCK.lock().unwrap();
    let scratch = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("target/obs-threads-test");
    let _ = std::fs::remove_dir_all(&scratch);

    set_mode(ObsMode::Full);
    assert!(recorder().begin_run_in("det_threads", Json::Null, &scratch));
    let sequential = tiny_results_json_with(&Executor::sequential());
    let pooled = tiny_results_json_with(&Executor::with_threads(4));
    let summary = recorder().finish_run().expect("summary written");
    set_mode(ObsMode::from_env());

    assert!(
        sequential == pooled,
        "EMA_OBS=full: threads=1 vs threads=4 diverged:\n--- threads=1 ---\n{sequential}\n--- threads=4 ---\n{pooled}"
    );
    assert!(summary.exists());

    // Every line of the multi-threaded manifest parses, and the pooled
    // cohort's job spans carry the worker tag.
    let text = std::fs::read_to_string(scratch.join("det_threads.jsonl"))
        .expect("full mode streams JSONL");
    let mut worker_tagged = 0;
    for line in text.lines() {
        let event = Json::parse(line).expect("every JSONL line parses");
        if event.get("worker").is_some() {
            worker_tagged += 1;
        }
    }
    assert!(
        worker_tagged > 0,
        "multi-threaded runs must emit worker-tagged events"
    );
}

/// Obs is observation only: switching `EMA_OBS` between `off` and
/// `full` must leave the experiment record byte-identical, and `off`
/// must never touch the filesystem.
#[test]
fn obs_modes_never_perturb_results_and_off_writes_nothing() {
    use ema_core::Json;
    use ema_obs::{recorder, set_mode, ObsMode};
    use std::path::Path;

    let _guard = OBS_MODE_LOCK.lock().unwrap();
    let scratch = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("target/obs-det-test");
    let _ = std::fs::remove_dir_all(&scratch);

    // Off: runs cannot start and no files appear.
    set_mode(ObsMode::Off);
    let off_json = tiny_results_json();
    assert!(
        !recorder().begin_run_in("det_off", Json::Null, &scratch),
        "off mode must refuse to start a run"
    );
    assert!(!scratch.exists(), "off mode must not create obs files");

    // Full: stream everything; the results must not change by a byte.
    set_mode(ObsMode::Full);
    assert!(recorder().begin_run_in("det_full", Json::Null, &scratch));
    let full_json = tiny_results_json();
    let summary = recorder().finish_run().expect("summary written");
    set_mode(ObsMode::from_env());

    assert!(
        off_json == full_json,
        "obs mode changed the experiment output:\n--- off ---\n{off_json}\n--- full ---\n{full_json}"
    );

    // The streamed log exists, parses line by line with the in-house
    // JSON parser, and carries the per-epoch training telemetry.
    let log = scratch.join("det_full.jsonl");
    let text = std::fs::read_to_string(&log).expect("full mode streams JSONL");
    let mut train_epochs = 0;
    for line in text.lines() {
        let event = Json::parse(line).expect("every JSONL line parses");
        if event.get("name").and_then(Json::as_str) == Some("train_epoch") {
            train_epochs += 1;
        }
    }
    assert!(train_epochs > 0, "full-mode log must record train_epoch events");
    assert!(summary.exists(), "run summary JSON must exist");

    // The new profiling layer fills every section of the manifest: an
    // aggregated span profile, kernel FLOP/byte counters from the
    // matmul funnel, and executor utilization counters.
    let summary_json = Json::parse(&std::fs::read_to_string(&summary).unwrap()).unwrap();
    let profile = summary_json.require("profile").expect("summary carries a profile section");
    assert!(
        matches!(profile, Json::Arr(roots) if !roots.is_empty()),
        "full-mode profile must aggregate at least one span tree"
    );
    let counters = summary_json
        .require("metrics")
        .and_then(|m| m.require("counters"))
        .expect("summary carries metrics counters");
    let counter_keys: Vec<&str> = match counters {
        Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("counters must be an object, got {}", other.compact()),
    };
    assert!(
        counter_keys.iter().any(|k| k.starts_with("kernel.") && k.ends_with(".calls")),
        "training under full obs must record kernel call counters, got {counter_keys:?}"
    );
    assert!(
        counter_keys.iter().any(|k| k.starts_with("kernel.") && k.ends_with(".flops")),
        "training under full obs must record kernel FLOP counters, got {counter_keys:?}"
    );
    assert!(
        counter_keys.iter().any(|k| k.starts_with("exec.worker_jobs.")),
        "cohort runs must publish per-worker job counters, got {counter_keys:?}"
    );
    // The folded-stacks twin of the profile is flamegraph food: every
    // line is `root;child;... self_ns`.
    let folded = std::fs::read_to_string(scratch.join("det_full.folded"))
        .expect("non-empty profiles write a .folded file");
    assert!(!folded.trim().is_empty());
    for line in folded.lines() {
        let (path, self_ns) = line.rsplit_once(' ').expect("folded line has `path ns`");
        assert!(!path.is_empty());
        self_ns.parse::<u64>().expect("folded self time is integral ns");
    }
}

/// Warm-pool invariance: running the same cohort twice in one process
/// (so the second run draws recycled, stale-content buffers from the
/// tensor pool — handed across runs by the executor's shelf) and at
/// different thread counts must still emit byte-identical JSON. A
/// kernel that reads a pooled buffer before overwriting it fails here.
#[test]
fn warm_buffer_pool_never_changes_results_json() {
    let cold = tiny_results_json_with(&Executor::with_threads(4));
    let warm = tiny_results_json_with(&Executor::with_threads(4));
    assert!(
        cold == warm,
        "cold-pool vs warm-pool runs diverged:\n--- cold ---\n{cold}\n--- warm ---\n{warm}"
    );
    let sequential_warm = tiny_results_json_with(&Executor::sequential());
    assert!(
        warm == sequential_warm,
        "warm pool: threads=4 vs threads=1 diverged:\n--- threads=4 ---\n{warm}\n--- threads=1 ---\n{sequential_warm}"
    );
}

/// The SIMD backend upholds the executor's headline guarantee exactly
/// like the scalar oracle: full results JSON byte-identical at
/// threads=1 vs threads=4 (kernel dispatch is per-thread state, and
/// every random stream is derived from `(run seed, id)`).
#[test]
fn simd_backend_results_json_identical_across_thread_counts() {
    let sequential = tiny_results_json_kernel(
        &Executor::sequential(),
        ForwardPath::default(),
        KernelBackend::Simd,
    );
    let pooled = tiny_results_json_kernel(
        &Executor::with_threads(4),
        ForwardPath::default(),
        KernelBackend::Simd,
    );
    assert!(
        sequential == pooled,
        "EMA_KERNEL=simd: threads=1 vs threads=4 diverged:\n--- threads=1 ---\n{sequential}\n--- threads=4 ---\n{pooled}"
    );
}

/// The scalar oracle is frozen: its results JSON must match the
/// committed same-seed baseline byte for byte, so any accidental
/// rewrite of the reference kernel (or of anything upstream of it —
/// data generation, graph build, training, aggregation, the JSON
/// writer) is caught even when both backends drift together. Regenerate
/// deliberately with `EMA_WRITE_BASELINE=1 cargo test -q --test
/// determinism scalar_backend` after an *intentional* numeric change.
#[test]
fn scalar_backend_results_match_committed_baseline() {
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("tests/fixtures/scalar_baseline.json");
    let current = tiny_results_json_kernel(
        &Executor::with_threads(4),
        ForwardPath::default(),
        KernelBackend::Scalar,
    );
    if std::env::var_os("EMA_WRITE_BASELINE").is_some() {
        std::fs::write(&fixture, &current).expect("write scalar baseline fixture");
        return;
    }
    let committed = std::fs::read_to_string(&fixture)
        .expect("committed scalar baseline missing; regenerate with EMA_WRITE_BASELINE=1");
    assert!(
        current == committed,
        "scalar-backend results diverged from the committed baseline:\n--- committed ---\n{committed}\n--- current ---\n{current}"
    );
}

/// A per-individual record of a streamed sharded cohort run; sharding
/// must be invisible in it byte for byte.
fn cohort_sharded_results_json(
    threads: usize,
    shard_size: usize,
    path: ema_core::CohortPath,
    model: ModelKind,
    graph: GraphSpec,
) -> String {
    cohort_sharded_strategy_results_json(
        threads,
        shard_size,
        path,
        model,
        graph,
        ema_core::TrainStrategy::Idiographic,
    )
}

/// Like [`cohort_sharded_results_json`] with an explicit training
/// strategy, so the cluster-warm-start path runs the same grid.
fn cohort_sharded_strategy_results_json(
    threads: usize,
    shard_size: usize,
    path: ema_core::CohortPath,
    model: ModelKind,
    graph: GraphSpec,
    strategy: ema_core::TrainStrategy,
) -> String {
    use ema_core::{run_cohort_sharded, Json, RunSpec, TrainConfig};
    use ema_data::{EmaGenerator, GeneratorConfig};
    use ema_models::ModelConfig;

    let generator = EmaGenerator::new(GeneratorConfig::quick(4, 4, 41));
    let mut spec = RunSpec::new(model, graph, 2);
    spec.model_config = ModelConfig::tiny(0);
    spec.train_config = TrainConfig::quick(3, 7);
    spec.cohort_path = path;
    spec.train_strategy = strategy;
    let executor = Executor::with_threads(threads);
    let outcomes = run_cohort_sharded(&generator, &spec, shard_size, &executor);
    Json::Arr(
        outcomes
            .iter()
            .map(|o| {
                Json::obj(vec![
                    ("id", Json::Num(o.id as f64)),
                    ("mse", Json::Num(o.mse)),
                    (
                        "per_variable_mse",
                        Json::Arr(o.per_variable_mse.iter().map(|&m| Json::Num(m)).collect()),
                    ),
                    ("final_train_loss", Json::Num(o.final_train_loss)),
                    ("epochs_run", Json::Num(o.epochs_run as f64)),
                ])
            })
            .collect(),
    )
    .compact()
}

/// The streaming sharded cohort path's headline guarantee: results are
/// byte-identical at every `(thread count, shard size)` pair — shard
/// boundaries never change numbers because every per-individual stream
/// is derived from `(run seed, id)` — and the cohort-batched tape graph
/// matches the per-individual oracle path byte for byte.
#[test]
fn cohort_sharded_results_identical_across_threads_shards_and_paths() {
    use ema_core::CohortPath;

    let run = |threads, shard, path| {
        cohort_sharded_results_json(threads, shard, path, ModelKind::Lstm, GraphSpec::None)
    };
    let baseline = run(1, 1, CohortPath::Batched);
    // (4, 2) is the CI smoke shape: 2 shards × 2 individuals on a
    // 4-worker executor.
    for (threads, shard) in [(4, 4), (4, 2), (4, 1)] {
        let probe = run(threads, shard, CohortPath::Batched);
        assert!(
            baseline == probe,
            "threads={threads}, shard={shard} diverged from threads=1, shard=1:\n--- baseline ---\n{baseline}\n--- probe ---\n{probe}"
        );
    }
    let oracle = run(4, 4, CohortPath::PerIndividual);
    assert!(
        baseline == oracle,
        "cohort-batched path diverged from the per-individual oracle:\n--- batched ---\n{baseline}\n--- oracle ---\n{oracle}"
    );
}

/// Same grid for a graph model: the grouped graph-conv/attention tape
/// ops must keep sharding invisible and match the per-individual
/// oracle byte for byte, with each individual's training-split graph
/// built on whichever worker generates its shard.
#[test]
fn cohort_sharded_graph_model_identical_across_threads_shards_and_paths() {
    use ema_core::CohortPath;

    let run = |threads, shard, path| {
        cohort_sharded_results_json(
            threads,
            shard,
            path,
            ModelKind::A3tgcn,
            GraphSpec::Static {
                metric: ema_similarity::GraphMetric::Correlation,
                gdt: ema_graph::sparsify::DensityThreshold::Gdt40,
            },
        )
    };
    let baseline = run(1, 1, CohortPath::Batched);
    for (threads, shard) in [(4, 4), (4, 2), (4, 1)] {
        let probe = run(threads, shard, CohortPath::Batched);
        assert!(
            baseline == probe,
            "threads={threads}, shard={shard} diverged from threads=1, shard=1:\n--- baseline ---\n{baseline}\n--- probe ---\n{probe}"
        );
    }
    let oracle = run(4, 4, CohortPath::PerIndividual);
    assert!(
        baseline == oracle,
        "cohort-batched graph model diverged from the per-individual oracle:\n--- batched ---\n{baseline}\n--- oracle ---\n{oracle}"
    );
}

/// The cluster-warm-start strategy keeps the same guarantee: the plan
/// (representatives, K-medoids, cluster checkpoints) is built once on
/// the caller thread, and warm-started fine-tunes derive their streams
/// from `(run seed, id)` exactly as idiographic runs do — so results
/// are byte-identical at every `(thread count, shard size)` pair and
/// the batched warm path matches the per-individual warm oracle.
#[test]
fn cohort_sharded_warm_start_identical_across_threads_shards_and_paths() {
    use ema_core::{CohortPath, TrainStrategy};

    let run = |threads, shard, path| {
        cohort_sharded_strategy_results_json(
            threads,
            shard,
            path,
            ModelKind::Lstm,
            GraphSpec::None,
            TrainStrategy::ClusterWarmStart {
                k: 2,
                cluster_epochs: 3,
                fine_tune_epochs: 2,
            },
        )
    };
    let baseline = run(1, 1, CohortPath::Batched);
    for (threads, shard) in [(4, 4), (4, 1)] {
        let probe = run(threads, shard, CohortPath::Batched);
        assert!(
            baseline == probe,
            "warm start: threads={threads}, shard={shard} diverged from threads=1, shard=1:\n--- baseline ---\n{baseline}\n--- probe ---\n{probe}"
        );
    }
    let oracle = run(4, 4, CohortPath::PerIndividual);
    assert!(
        baseline == oracle,
        "warm-started batched path diverged from the per-individual warm oracle:\n--- batched ---\n{baseline}\n--- oracle ---\n{oracle}"
    );
}

#[test]
fn same_seed_training_yields_byte_identical_checkpoints() {
    use ema_models::{build_model, ModelConfig};
    use ema_tensor::{Rng64, Tensor};

    let capture = || {
        let mut rng = Rng64::seed_from(77);
        let model = build_model(ModelKind::Lstm, 4, 2, &ModelConfig::tiny(9), None);
        // Touch the RNG the way a training loop would, then snapshot.
        let _ = model.predict(&Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut rng), &mut rng);
        Checkpoint::capture(model.params()).to_json()
    };
    assert_eq!(capture(), capture());
}
