//! Checkpoint round-trip hardening: save → load → save is
//! byte-identical for every model (bit-exact f64 via `ema_core::Json`),
//! and a warm-started `train_model` with 0 fine-tune epochs is a pure
//! restore — it reproduces the checkpoint's predictions bitwise.

use ema_core::pipeline::graph_for_individual;
use ema_core::train::{predict_all, train_model};
use ema_core::{Checkpoint, TrainConfig};
use ema_data::{make_windows, split_train_test, EmaGenerator, GeneratorConfig};
use ema_graph::sparsify::DensityThreshold;
use ema_graph::AdjacencyMatrix;
use ema_models::{build_model, Forecaster, ModelConfig, ModelKind};
use ema_similarity::GraphMetric;
use ema_tensor::Tensor;
use std::sync::Arc;

const SEQ_LEN: usize = 2;

fn study_individual() -> (Tensor, AdjacencyMatrix) {
    let generator = EmaGenerator::new(GeneratorConfig::quick(2, 4, 97));
    let ind = generator.generate_range(1, 2).pop().expect("individual 1");
    let (train, _) = split_train_test(&ind.data, 0.7);
    let graph = graph_for_individual(&train, GraphMetric::Correlation, DensityThreshold::Gdt40);
    (train, graph)
}

fn trained_model(kind: ModelKind, train: &Tensor, graph: &AdjacencyMatrix) -> Box<dyn Forecaster> {
    let v = train.dims()[1];
    let graph = kind.uses_graph().then_some(graph);
    let mut model = build_model(kind, v, SEQ_LEN, &ModelConfig::tiny(5), graph);
    let windows = make_windows(train, SEQ_LEN);
    let config = TrainConfig::quick(3, 11);
    let _ = train_model(&mut *model, &windows, &config);
    model
}

/// `save → load → save` writes the same bytes for every model kind:
/// the JSON schema is stable and f64s survive the round trip bit for
/// bit.
#[test]
fn checkpoint_save_load_save_is_byte_identical() {
    let (train, graph) = study_individual();
    for kind in ModelKind::all() {
        let model = trained_model(kind, &train, &graph);
        let ckpt = Checkpoint::capture(model.params());
        let path = std::env::temp_dir().join(format!(
            "ema_ckpt_roundtrip_{}_{}.json",
            kind.label(),
            std::process::id()
        ));
        ckpt.save(&path).expect("save checkpoint");
        let first = std::fs::read_to_string(&path).expect("read saved checkpoint");
        let loaded = Checkpoint::load(&path).expect("load checkpoint");
        loaded.save(&path).expect("re-save checkpoint");
        let second = std::fs::read_to_string(&path).expect("read re-saved checkpoint");
        let _ = std::fs::remove_file(&path);
        assert!(
            first == second,
            "{}: save→load→save changed bytes",
            kind.label()
        );
        assert_eq!(first, ckpt.to_json(), "{}: file differs from to_json", kind.label());
    }
}

/// A warm start with `epochs = 0` is a pure restore: a freshly built
/// model (different init seed) restored from the checkpoint predicts
/// bitwise what the captured model predicts — for every model kind.
#[test]
fn zero_epoch_warm_start_reproduces_checkpoint_predictions_bitwise() {
    let (train, graph) = study_individual();
    let windows = make_windows(&train, SEQ_LEN);
    for kind in ModelKind::all() {
        let source = trained_model(kind, &train, &graph);
        let ckpt = Arc::new(Checkpoint::capture(source.params()));
        let want = predict_all(&*source, &windows, 0);

        // A different ModelConfig seed: the restore must overwrite
        // every parameter, so the init draws cannot matter.
        let v = train.dims()[1];
        let g = kind.uses_graph().then_some(&graph);
        let mut restored = build_model(kind, v, SEQ_LEN, &ModelConfig::tiny(1234), g);
        let config = TrainConfig {
            epochs: 0,
            warm_start: Some(ckpt),
            ..TrainConfig::quick(3, 11)
        };
        let report = train_model(&mut *restored, &windows, &config);
        assert_eq!(report.epochs_run, 0, "{}: restore must not train", kind.label());
        let got = predict_all(&*restored, &windows, 0);
        assert_eq!(
            got.data(),
            want.data(),
            "{}: restored predictions are not bit-identical",
            kind.label()
        );
    }
}
