//! Structure-recovery tests: because the synthetic generator exposes
//! each individual's ground-truth interaction graph, we can verify that
//! the similarity graphs (and MTGNN's learned graph) carry real signal —
//! a check the original study could not perform on clinical data.

use ema_check::Check;
use ema_core::pipeline::{run_individual, GraphSpec, RunSpec};
use ema_core::train::TrainConfig;
use ema_data::{split_train_test, EmaGenerator, GeneratorConfig};
use ema_graph::random::random_like;
use ema_graph::sparsify::DensityThreshold;
use ema_graph::stats::{edge_set_jaccard, edge_weight_correlation};
use ema_models::{ModelConfig, ModelKind};
use ema_similarity::{build_graph, GraphMetric};
use ema_tensor::Rng64;
use std::cell::Cell;

/// Generator tuned for recoverable structure: long series, strong
/// couplings, no circadian confound.
fn structured_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        num_individuals: 3,
        num_variables: 10,
        mean_time_points: 500,
        coupling_strength: 0.6,
        noise_std: 0.25,
        circadian_amplitude: 0.0,
        missing_rate: 0.0,
        seed,
        ..GeneratorConfig::default()
    }
}

#[test]
fn correlation_graph_recovers_more_structure_than_random() {
    let ds = EmaGenerator::new(structured_config(7)).generate();
    // Per individual: the correlation graph's score plus the sparsity
    // pattern the random competitors must match.
    let per_individual: Vec<_> = ds
        .individuals
        .iter()
        .map(|ind| {
            let gt = ind.ground_truth.as_ref().unwrap().symmetrized();
            let (train, _) = split_train_test(&ind.data, 0.7);
            let corr_graph = build_graph(&train, GraphMetric::Correlation);
            let corr_score = edge_weight_correlation(&corr_graph, &gt);
            let sparse = ema_graph::sparsify::sparsify(&corr_graph, DensityThreshold::Gdt40);
            (corr_score, sparse, gt)
        })
        .collect();

    // Seeded property cases: each case draws fresh random graphs of the
    // same density and tallies whether the correlation graph wins.
    let wins = Cell::new(0usize);
    let total = Cell::new(0usize);
    Check::named("graph_recovery::correlation_graph_recovers_more_structure_than_random")
        .cases(8)
        .run(
            |rng| rng.next_u64(),
            |seed| {
                let mut rng = Rng64::seed_from(*seed);
                for (corr_score, sparse, gt) in &per_individual {
                    let random = random_like(sparse, &mut rng);
                    let rand_score = edge_weight_correlation(&random, gt);
                    if *corr_score > rand_score {
                        wins.set(wins.get() + 1);
                    }
                    total.set(total.get() + 1);
                }
                Ok(())
            },
        );
    let (wins, total) = (wins.get(), total.get());
    assert!(
        wins * 10 >= total * 8,
        "correlation graph beat random in only {wins}/{total} comparisons"
    );
}

#[test]
fn all_metrics_produce_graphs_more_informative_than_chance() {
    let ds = EmaGenerator::new(structured_config(8)).generate();
    let ind = &ds.individuals[0];
    let gt = ind.ground_truth.as_ref().unwrap().symmetrized();
    let (train, _) = split_train_test(&ind.data, 0.7);
    for metric in [
        GraphMetric::Correlation,
        GraphMetric::Euclidean,
        GraphMetric::Knn(3),
    ] {
        let g = build_graph(&train, metric);
        let score = edge_weight_correlation(&g, &gt);
        assert!(
            score > -0.2,
            "{} graph anti-correlates with ground truth: {score}",
            metric.label()
        );
    }
}

#[test]
fn sparsified_graphs_retain_overlap_with_dense_version() {
    let ds = EmaGenerator::new(structured_config(9)).generate();
    let ind = &ds.individuals[0];
    let (train, _) = split_train_test(&ind.data, 0.7);
    let dense = build_graph(&train, GraphMetric::Correlation);
    let sparse = ema_graph::sparsify::sparsify(&dense, DensityThreshold::Gdt20);
    // Every sparse edge must exist in the dense graph with equal weight.
    for (i, j, w) in sparse.edges() {
        assert!((dense.weight(i, j) - w).abs() < 1e-12);
    }
    assert!(edge_set_jaccard(&sparse, &dense) > 0.0);
    assert!(sparse.num_edges() < dense.num_edges());
}

#[test]
fn mtgnn_learned_graph_is_nontrivial() {
    let ds = EmaGenerator::new(structured_config(10)).generate();
    let ind = &ds.individuals[0];
    let spec = RunSpec {
        model_config: ModelConfig::tiny(3),
        train_config: TrainConfig::quick(25, 11),
        ..RunSpec::new(
            ModelKind::Mtgnn,
            GraphSpec::Static {
                metric: GraphMetric::Correlation,
                gdt: DensityThreshold::Gdt20,
            },
            3,
        )
    };
    let out = run_individual(ind.id, &ind.data, &spec);
    let learned = out.learned_graph.expect("learned graph present");
    assert!(learned.num_edges() > 0, "learned graph is empty");
    assert!(learned.weights().all_finite());
    // The learned graph differs from the static prior (learning moved it)
    // but retains correlation with it (prior + shared signal).
    let static_g = out.graph_used.unwrap();
    assert_ne!(learned.weights().data(), static_g.weights().data());
    let r = edge_weight_correlation(&learned, &static_g);
    assert!(r > 0.0, "learned graph lost all prior signal: r = {r}");
}
