#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the extension
# experiments, recording JSON under results/.
#
# Usage: scripts/regenerate_all.sh [tiny|quick|full]
set -euo pipefail
scale="${1:-quick}"

cargo build --release -p ema-bench

bins=(table1 table2 table3 fig3 ablation seq_sweep per_variable hyperparams)
for bin in "${bins[@]}"; do
    echo "=== $bin (--scale $scale) ==="
    if [ "$bin" = table1 ]; then
        ./target/release/table1
    else
        "./target/release/$bin" --scale "$scale"
    fi
    echo
done
