#!/usr/bin/env bash
# Offline CI for the ema-gnn workspace.
#
# The workspace has zero external dependencies (path-only crates), so
# every step below runs with the network disabled. `--offline` makes
# cargo fail loudly if a registry dependency ever sneaks back in.
#
# Usage: scripts/ci.sh [--with-bench]
#   --with-bench  also run the microbenchmark suites (fast settings)
#                 to validate the bench harness end to end.

set -euo pipefail
cd "$(dirname "$0")/.."

WITH_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --with-bench) WITH_BENCH=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo build (all targets)"
cargo build --offline --workspace --all-targets

echo "==> cargo test (EMA_KERNEL=scalar)"
# The whole suite once per kernel backend: the scalar bit-identity
# oracle and the SIMD hot path (on machines without AVX2+FMA the simd
# run degrades to scalar and is a cheap no-op re-check). Backend-pinned
# tests (properties, backend_equivalence, the determinism fixtures)
# scope their own backend, so these env runs primarily sweep everything
# that follows the process default.
EMA_KERNEL=scalar cargo test --offline --workspace -q

echo "==> cargo test (EMA_KERNEL=simd)"
EMA_KERNEL=simd cargo test --offline --workspace -q

echo "==> cargo test (EMA_THREADS=4)"
# Re-run the suite on a 4-worker cohort executor: results must be
# byte-identical to the sequential run (the exec engine's guarantee).
EMA_THREADS=4 cargo test --offline --workspace -q

echo "==> batched-forward equivalence (EMA_THREADS=4)"
# The batched hot path must be bit-identical to the per-window oracle:
# the per-model property suites (values + parameter gradients) and the
# full-pipeline results-JSON determinism case, both on a 4-worker
# executor.
EMA_THREADS=4 cargo test --offline -p ema-models --test batched_equivalence -q
EMA_THREADS=4 cargo test --offline --test determinism -q batched_and_per_window_paths_emit_identical_results_json

echo "==> sharded-cohort smoke (EMA_THREADS=4)"
# Streamed sharded cohort on a 4-worker executor: the cohort-batched
# tape graph must be bit-identical to the per-individual oracle, and
# shard boundaries must never change numbers. Covers the 2-shard ×
# 2-individual shape alongside shard sizes 1 and 4 (the grid inside
# each test) for both the LSTM and a graph model (A3TGCN exercises the
# grouped graph-conv/attention ops end to end), plus the 256-case
# models-layer cohort properties.
EMA_THREADS=4 cargo test --offline -p ema-models --test batched_equivalence -q cohort_matches_per_individual_oracle
EMA_THREADS=4 cargo test --offline --test determinism -q cohort_sharded_results_identical_across_threads_shards_and_paths
EMA_THREADS=4 cargo test --offline --test determinism -q cohort_sharded_graph_model_identical_across_threads_shards_and_paths

echo "==> cluster-warm-start smoke (EMA_THREADS=4)"
# Cluster-then-personalize: the warm-started sharded cohort must stay
# byte-identical across thread counts, shard sizes and cohort paths
# (the plan is built once on the caller thread), and the tiny
# cluster_compare table must render and record results JSON for all
# four models.
EMA_THREADS=4 cargo test --offline --test determinism -q cohort_sharded_warm_start_identical_across_threads_shards_and_paths
EMA_THREADS=4 cargo run --offline -q --release -p ema-bench --bin cluster_compare -- --scale tiny > /dev/null
test -s results/cluster_compare.json

echo "==> cargo clippy"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> obs smoke (EMA_OBS=full)"
# Trains one tiny individual with full tracing; the example itself
# re-parses every JSONL line with ema_core::Json and panics on any
# malformed event, so a green run validates the whole obs path.
EMA_OBS=full cargo run --offline -q -p ema-core --example obs_loss_curve > /dev/null
test -s results/obs/obs_loss_curve.jsonl
test -s results/obs/obs_loss_curve.summary.json
test -s results/obs/obs_loss_curve.folded

echo "==> obs_report smoke"
# Renders the run's span profile / kernel table / utilization report;
# exits nonzero when the manifest carries no span profile, so a
# silently-dead profiler fails CI here.
cargo run --offline -q -p ema-bench --bin obs_report -- obs_loss_curve > /dev/null

if [ "$WITH_BENCH" = 1 ]; then
  echo "==> cargo bench"
  # Snapshot the committed training-epoch suite *before* benching (the
  # bench run overwrites results/BENCH_*.json in place), and stash the
  # recorded suites so the CI rerun does not clobber them — they are
  # restored after the gate. The rerun uses the harness's *default*
  # sampling so its medians are methodology-identical to the committed
  # baseline (the whole workspace suite costs well under a minute);
  # short-budget reruns proved systematically biased on shared hosts.
  mkdir -p target/bench_ci_stash
  git show HEAD:results/BENCH_training_epoch.json > target/bench_baseline_training_epoch.json
  git show HEAD:results/BENCH_pipeline.json > target/bench_baseline_pipeline.json
  cp results/BENCH_*.json target/bench_ci_stash/ 2>/dev/null || true
  restore_bench_results() { cp target/bench_ci_stash/BENCH_*.json results/ 2>/dev/null || true; }
  trap restore_bench_results EXIT
  cargo bench --offline --workspace

  echo "==> bench regression gate"
  # Fails on any median >15% slower — or any allocs/iter >15% higher —
  # than the committed baselines. Timing allowances are scaled by the
  # suite's least-inflated sibling benchmark (leave-one-out, capped at
  # 1.5x; see bench_gate.rs) so uniform shared-host load doesn't trip
  # the gate while differential hot-loop regressions still do. Gates
  # both the training-epoch suite and the cohort-throughput pipeline
  # suite.
  cargo run --offline -q -p ema-bench --bin bench_gate -- \
    target/bench_baseline_training_epoch.json results/BENCH_training_epoch.json \
    target/bench_baseline_pipeline.json results/BENCH_pipeline.json
fi

echo "==> CI green"
